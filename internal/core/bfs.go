package core

import (
	"math/bits"
	"sync/atomic"

	"pasgal/internal/graph"
	"pasgal/internal/hashbag"
	"pasgal/internal/parallel"
	"pasgal/internal/trace"
)

// BFS computes hop distances from src with PASGAL's VGC BFS.
//
// The algorithm is a label-correcting BFS over distance-indexed frontier
// bags (the paper's "multiple frontiers" device, §2.2): bag d holds
// vertices whose tentative distance is d. One round extracts the bag at the
// current distance and each extracted vertex runs a VGC local search,
// relaxing edges with an atomic write-min; improvements within the τ budget
// are expanded immediately in-task (possibly many hops deep), and the rest
// are inserted into the bag matching their new tentative distance. Because
// a local search advances at most τ hops past the current distance, τ+2
// bags indexed modulo suffice. When the frontier is dense, a Beamer-style
// bottom-up round scans improvable vertices' in-neighbors instead.
//
// Unlike textbook BFS a vertex can be visited more than once (a local
// search may install a distance that a later relaxation improves) — that is
// the extra work VGC knowingly trades for fewer synchronizations.
//
// A non-nil opt.Ctx makes the run cancellable: on cancellation BFS returns
// (nil, partial Metrics, ErrCanceled/ErrDeadline).
func BFS(g *graph.Graph, src uint32, opt Options) ([]uint32, *Metrics, error) {
	opt = opt.Normalized()
	defer attachRuntimeTracer(opt)()
	met := NewMetrics(opt, "bfs")
	cl := NewCanceler(opt, met)
	defer cl.Close()
	n := g.N
	dist := make([]atomic.Uint32, n)
	parallel.For(n, 0, func(i int) { dist[i].Store(graph.InfDist) })
	out := make([]uint32, n)
	if n == 0 {
		return out, met, cl.Poll()
	}
	tau := opt.tau()
	// Ring capacity: a local search from the window's deepest extracted
	// distance (cur + window - 1, window <= tau) can advance tau+1 more
	// hops, so 2*tau + 4 distance buckets always suffice.
	nBags := 2*tau + 4
	fr := newFrontierSet(n, nBags, opt.DisableHashBag, opt.Tracer)
	in := g.Transpose() // in-neighbors; == g for undirected graphs

	dist[src].Store(0)
	fr.insert(0, src)
	var pending atomic.Int64
	pending.Store(1)
	denseCut := opt.denseCut(n)

	// The adaptive distance window realizes the paper's "multiple
	// frontiers" device: when frontiers are small (the large-diameter
	// regime) one round extracts a widening window of distance buckets and
	// relies on write-min re-relaxation to repair ordering errors; when
	// frontiers are large the window collapses to a single distance and
	// the round is an ordinary BFS level (optionally bottom-up).
	window := 1
	// A round's deepest extracted distance (cur + window - 1) plus a local
	// search's tau+1-hop advance must stay within the bucket ring, so the
	// window never grows past tau+2 (unchecked doubling could reach 2tau-2
	// for non-power-of-two tau and wrap the ring).
	maxWindow := tau + 2
	const windowGrowCut = 2048

	cur := 0
	for pending.Load() > 0 {
		// Round boundary: a canceled round may have drained chunks without
		// inserting their discoveries, so the pending count (and the bucket
		// ring invariant below) no longer mean anything — stop before
		// touching them.
		if err := cl.Poll(); err != nil {
			return nil, met, err
		}
		// Advance to the first non-empty bucket; all pending distances lie
		// in [cur+1, cur+nBags) whenever bucket cur is empty, so the scan
		// is bounded and never misses work.
		for fr.len(cur) == 0 {
			cur++
		}
		// Gather up to `window` consecutive distance buckets.
		var f []uint32
		var bucketOf []int // parallel: the distance each entry came from
		grabbed := 0
		for d := cur; d < cur+window && grabbed < nBags-tau-1; d++ {
			if fr.len(d) == 0 {
				continue
			}
			part := fr.extract(d)
			pending.Add(-(int64(len(part)) + fr.dupDebt()))
			f = append(f, part...)
			for range part {
				bucketOf = append(bucketOf, d)
			}
			grabbed++
		}
		met.Round(len(f))
		if int64(len(f)) < windowGrowCut && window < maxWindow {
			window = min(2*window, maxWindow)
		} else if window > 1 {
			window /= 2
		}

		if int64(len(f)) >= denseCut {
			// Bottom-up: instead of expanding the (dense) frontier, every
			// improvable vertex scans its own in-neighbors and write-mins
			// the best candidate distance. This covers every relaxation
			// the frontier's out-edges would have performed, including
			// repairs of distances a local search over-estimated, so the
			// extracted entries need no further processing.
			met.AddBottomUp()
			window = 1 // dense regime: back to level-at-a-time
			target := uint32(cur + 1)
			// A pull can chain: v may read an in-neighbor distance stored
			// earlier in this same scan, advancing many hops in one round.
			// Unbounded chains would insert past the bucket ring, where the
			// entry lands in a wrong-distance bucket and is dropped as stale
			// on extraction. Cap the advance at the ring's edge; a vertex
			// past the cap is re-relaxed when its capped in-neighbor's
			// bucket is processed, so nothing is lost.
			maxIns := uint32(cur + nBags - 1)
			parallel.ForRangeCancel(cl.Token(), n, 0, func(lo, hi int) {
				var local int64
				for vi := lo; vi < hi; vi++ {
					v := uint32(vi)
					best := dist[v].Load()
					if best <= target {
						continue
					}
					for _, u := range in.Neighbors(v) {
						local++
						if du := dist[u].Load(); du != graph.InfDist && du+1 < best {
							best = du + 1
							if best <= target {
								break // cannot get closer than cur+1
							}
						}
					}
					if best < dist[v].Load() && best <= maxIns {
						dist[v].Store(best) // sole writer of v this round
						fr.insert(int(best), v)
						pending.Add(1)
					}
				}
				met.AddEdges(local)
			})
			continue
		}

		// Top-down with VGC local searches. The local worklist is FIFO, so
		// a local search is a mini-BFS: tentative distances stay close to
		// final and redundant re-relaxation is rare (a LIFO local search
		// would chase depth-first chains of inflated distances and repair
		// them over and over).
		parallel.ForRangeCancel(cl.Token(), len(f), 1, func(lo, hi int) {
			queue := make([]uint32, 0, 64)
			var edgeCount int64
			for i := lo; i < hi; i++ {
				v := f[i]
				if dist[v].Load() != uint32(bucketOf[i]) {
					continue // stale: improved and handled elsewhere
				}
				queue = append(queue[:0], v)
				budget := tau
				for head := 0; head < len(queue); head++ {
					u := queue[head]
					du := dist[u].Load()
					nd := du + 1
					for _, w := range g.Neighbors(u) {
						edgeCount++
						for {
							old := dist[w].Load()
							if nd >= old {
								break
							}
							if dist[w].CompareAndSwap(old, nd) {
								if budget > 0 {
									queue = append(queue, w)
								} else {
									fr.insert(int(nd), w)
									pending.Add(1)
								}
								break
							}
						}
					}
					budget -= g.Degree(u)
					if budget <= 0 && head+1 < len(queue) {
						// Flush the remaining local work to the shared
						// frontier bags.
						for _, w := range queue[head+1:] {
							d := dist[w].Load()
							fr.insert(int(d), w)
							pending.Add(1)
						}
						queue = queue[:head+1]
					}
				}
			}
			met.AddEdges(edgeCount)
		})
	}

	// Final check before materializing: a cancellation during the last
	// round can empty the pending count without completing the work, so
	// only a clean Poll here lets the result be claimed complete.
	if err := cl.Poll(); err != nil {
		return nil, met, err
	}
	parallel.For(n, 0, func(i int) { out[i] = dist[i].Load() })
	return out, met, nil
}

// frontierSet is the rotating set of distance-indexed frontiers: hash bags
// by default, or flat dense boolean arrays for the ablation.
type frontierSet struct {
	bags    []*hashbag.Bag
	flat    [][]atomic.Uint32 // dense variant: bit flags per vertex
	flatN   []atomic.Int64
	n       int
	lastDup int64
}

func newFrontierSet(n, k int, flat bool, tr *trace.Tracer) *frontierSet {
	fs := &frontierSet{n: n}
	if flat {
		fs.flat = make([][]atomic.Uint32, k)
		fs.flatN = make([]atomic.Int64, k)
		for i := range fs.flat {
			fs.flat[i] = make([]atomic.Uint32, (n+31)/32)
		}
		return fs
	}
	fs.bags = make([]*hashbag.Bag, k)
	for i := range fs.bags {
		fs.bags[i] = hashbag.New(64)
		fs.bags[i].SetTracer(tr)
	}
	return fs
}

func (fs *frontierSet) idx(d int) int {
	if fs.bags != nil {
		return d % len(fs.bags)
	}
	return d % len(fs.flat)
}

func (fs *frontierSet) insert(d int, v uint32) {
	i := fs.idx(d)
	if fs.bags != nil {
		fs.bags[i].Insert(v)
		return
	}
	word, bit := v/32, uint32(1)<<(v%32)
	for {
		old := fs.flat[i][word].Load()
		if old&bit != 0 {
			fs.flatN[i].Add(1) // duplicate: still counts as an insert
			return
		}
		if fs.flat[i][word].CompareAndSwap(old, old|bit) {
			fs.flatN[i].Add(1)
			return
		}
	}
}

func (fs *frontierSet) len(d int) int {
	i := fs.idx(d)
	if fs.bags != nil {
		return fs.bags[i].Len()
	}
	return int(fs.flatN[i].Load())
}

// extract drains frontier d. The dense variant pays an O(n/32) scan — the
// cost the hash bag exists to avoid.
func (fs *frontierSet) extract(d int) []uint32 {
	i := fs.idx(d)
	if fs.bags != nil {
		return fs.bags[i].Extract()
	}
	inserts := fs.flatN[i].Swap(0)
	words := fs.flat[i]
	var out []uint32
	lists := make([][]uint32, (len(words)+1023)/1024)
	parallel.For(len(lists), 1, func(b int) {
		lo := b * 1024
		hi := min(lo+1024, len(words))
		var l []uint32
		for w := lo; w < hi; w++ {
			bv := words[w].Swap(0)
			for bv != 0 {
				tz := bits.TrailingZeros32(bv)
				l = append(l, uint32(w*32+tz))
				bv &= bv - 1
			}
		}
		lists[b] = l
	})
	for _, l := range lists {
		out = append(out, l...)
	}
	// The bitmap deduplicates, but callers track pending work by insert
	// count; stash the swallowed-duplicate count for dupDebt.
	fs.lastDup = inserts - int64(len(out))
	return out
}

// lastDup holds, after extract, the number of duplicate inserts swallowed
// by the dense bitmap (the hash bag keeps duplicates so it is always 0
// there). Callers must subtract it from their pending count.
func (fs *frontierSet) dupDebt() int64 {
	d := fs.lastDup
	fs.lastDup = 0
	return d
}
