package core

import (
	"math"
	"math/bits"
	"sync/atomic"

	"pasgal/internal/graph"
	"pasgal/internal/hashbag"
	"pasgal/internal/parallel"
	"pasgal/internal/trace"
)

// BFS computes hop distances from src with PASGAL's VGC BFS.
//
// The algorithm is a label-correcting BFS over distance-indexed frontier
// bags (the paper's "multiple frontiers" device, §2.2): bag d holds
// vertices whose tentative distance is d. One round extracts the bag at the
// current distance and each extracted vertex runs a VGC local search,
// relaxing edges with an atomic write-min; improvements within the τ budget
// are expanded immediately in-task (possibly many hops deep), and the rest
// are inserted into the bag matching their new tentative distance. Because
// a local search advances at most τ hops past the current distance, τ+2
// bags indexed modulo suffice. When the frontier is dense, a Beamer-style
// bottom-up round scans improvable vertices' in-neighbors instead.
//
// Unlike textbook BFS a vertex can be visited more than once (a local
// search may install a distance that a later relaxation improves) — that is
// the extra work VGC knowingly trades for fewer synchronizations.
//
// BFS accepts either graph representation. Plain CSR runs the historical
// loops untouched; the compressed form runs specialized decode-on-scan
// loops (bulk-decode per local search going top-down, a streaming cursor
// with early exit going bottom-up). See graph.Adjacency for why this is a
// type switch and not a virtualized inner loop.
//
// A non-nil opt.Ctx makes the run cancellable: on cancellation BFS returns
// (nil, partial Metrics, ErrCanceled/ErrDeadline).
func BFS(a graph.Adjacency, src uint32, opt Options) ([]uint32, *Metrics, error) {
	opt = opt.Normalized()
	defer attachRuntimeTracer(opt)()
	met := NewMetrics(opt, "bfs")
	cl := NewCanceler(opt, met)
	defer cl.Close()
	n := a.NumVertices()
	dist := make([]atomic.Uint32, n)
	parallel.For(n, 0, func(i int) { dist[i].Store(graph.InfDist) })
	out := make([]uint32, n)
	if n == 0 {
		return out, met, cl.Poll()
	}
	tau := opt.tau()
	// Ring capacity: a local search from the window's deepest extracted
	// distance (cur + window - 1, window <= tau) can advance tau+1 more
	// hops, so 2*tau + 4 distance buckets always suffice.
	nBags := 2*tau + 4
	st := &bfsState{
		n:        n,
		tau:      tau,
		nBags:    nBags,
		denseCut: opt.denseCut(n),
		dist:     dist,
		fr:       newFrontierSet(n, nBags, opt.DisableHashBag, opt.Tracer),
		met:      met,
		cl:       cl,
	}
	// Per-representation scan specializations: the driver calls these once
	// per round, so the indirect call is amortized over a whole frontier
	// and each closure keeps its monomorphic inner loop.
	var pull func(cur int)
	var push func(f []uint32, bucketOf []int)
	switch g := a.(type) {
	case *graph.Graph:
		pull, push = bfsPlainScans(g, st)
	case *graph.Compressed:
		pull, push = bfsCompressedScans(g, st)
	case *graph.Overlay:
		pull, push = bfsOverlayScans(g, st)
	}

	dist[src].Store(0)
	st.fr.insert(0, src)
	st.pending.Store(1)
	if err := bfsDrive(st, pull, push); err != nil {
		return nil, met, err
	}
	// Final check before materializing: a cancellation during the last
	// round can empty the pending count without completing the work, so
	// only a clean Poll here lets the result be claimed complete.
	if err := cl.Poll(); err != nil {
		return nil, met, err
	}
	parallel.For(n, 0, func(i int) { out[i] = dist[i].Load() })
	return out, met, nil
}

// bfsState bundles the frontier machinery shared by the driver and the
// per-representation scans.
type bfsState struct {
	n        int
	tau      int
	nBags    int
	denseCut int64
	dist     []atomic.Uint32
	fr       *frontierSet
	pending  atomic.Int64
	met      *Metrics
	cl       *Canceler
}

// bfsDrive runs the round loop: frontier extraction, the adaptive
// distance window, and the direction switch. It is representation-free;
// all graph access happens inside the pull/push closures.
func bfsDrive(st *bfsState, pull func(cur int), push func(f []uint32, bucketOf []int)) error {
	// The adaptive distance window realizes the paper's "multiple
	// frontiers" device: when frontiers are small (the large-diameter
	// regime) one round extracts a widening window of distance buckets and
	// relies on write-min re-relaxation to repair ordering errors; when
	// frontiers are large the window collapses to a single distance and
	// the round is an ordinary BFS level (optionally bottom-up).
	window := 1
	// A round's deepest extracted distance (cur + window - 1) plus a local
	// search's tau+1-hop advance must stay within the bucket ring, so the
	// window never grows past tau+2 (unchecked doubling could reach 2tau-2
	// for non-power-of-two tau and wrap the ring).
	maxWindow := st.tau + 2
	const windowGrowCut = 2048

	fr := st.fr
	cur := 0
	for st.pending.Load() > 0 {
		// Round boundary: a canceled round may have drained chunks without
		// inserting their discoveries, so the pending count (and the bucket
		// ring invariant below) no longer mean anything — stop before
		// touching them.
		if err := st.cl.Poll(); err != nil {
			return err
		}
		// Advance to the first non-empty bucket; all pending distances lie
		// in [cur+1, cur+nBags) whenever bucket cur is empty, so the scan
		// is bounded and never misses work.
		for fr.len(cur) == 0 {
			cur++
		}
		// Gather up to `window` consecutive distance buckets.
		var f []uint32
		var bucketOf []int // parallel: the distance each entry came from
		grabbed := 0
		for d := cur; d < cur+window && grabbed < st.nBags-st.tau-1; d++ {
			if fr.len(d) == 0 {
				continue
			}
			part := fr.extract(d)
			st.pending.Add(-(int64(len(part)) + fr.dupDebt()))
			f = append(f, part...)
			for range part {
				bucketOf = append(bucketOf, d)
			}
			grabbed++
		}
		st.met.Round(len(f))
		if int64(len(f)) < windowGrowCut && window < maxWindow {
			window = min(2*window, maxWindow)
		} else if window > 1 {
			window /= 2
		}

		if int64(len(f)) >= st.denseCut {
			// Bottom-up: instead of expanding the (dense) frontier, every
			// improvable vertex scans its own in-neighbors and write-mins
			// the best candidate distance. This covers every relaxation
			// the frontier's out-edges would have performed, including
			// repairs of distances a local search over-estimated, so the
			// extracted entries need no further processing.
			st.met.AddBottomUp()
			window = 1 // dense regime: back to level-at-a-time
			pull(cur)
			continue
		}

		// Top-down with VGC local searches. The local worklist is FIFO, so
		// a local search is a mini-BFS: tentative distances stay close to
		// final and redundant re-relaxation is rare (a LIFO local search
		// would chase depth-first chains of inflated distances and repair
		// them over and over).
		push(f, bucketOf)
	}
	return nil
}

// bfsPlainScans builds the plain-CSR round bodies — the historical inner
// loops, verbatim.
func bfsPlainScans(g *graph.Graph, st *bfsState) (pull func(cur int), push func(f []uint32, bucketOf []int)) {
	var in *graph.Graph
	if st.denseCut != math.MaxInt64 {
		// in-neighbors; == g for undirected graphs. Only built when a
		// bottom-up round can actually happen — with direction
		// optimization off, a directed graph never pays for its
		// transpose.
		in = g.Transpose()
	}
	dist, fr := st.dist, st.fr
	pull = func(cur int) {
		target := uint32(cur + 1)
		// A pull can chain: v may read an in-neighbor distance stored
		// earlier in this same scan, advancing many hops in one round.
		// Unbounded chains would insert past the bucket ring, where the
		// entry lands in a wrong-distance bucket and is dropped as stale
		// on extraction. Cap the advance at the ring's edge; a vertex
		// past the cap is re-relaxed when its capped in-neighbor's
		// bucket is processed, so nothing is lost.
		maxIns := uint32(cur + st.nBags - 1)
		parallel.ForRangeCancel(st.cl.Token(), st.n, 0, func(lo, hi int) {
			var local int64
			for vi := lo; vi < hi; vi++ {
				v := uint32(vi)
				best := dist[v].Load()
				if best <= target {
					continue
				}
				for _, u := range in.Neighbors(v) {
					local++
					if du := dist[u].Load(); du != graph.InfDist && du+1 < best {
						best = du + 1
						if best <= target {
							break // cannot get closer than cur+1
						}
					}
				}
				if best < dist[v].Load() && best <= maxIns {
					dist[v].Store(best) // sole writer of v this round
					fr.insert(int(best), v)
					st.pending.Add(1)
				}
			}
			st.met.AddEdges(local)
		})
	}
	push = func(f []uint32, bucketOf []int) {
		parallel.ForRangeCancel(st.cl.Token(), len(f), 1, func(lo, hi int) {
			queue := make([]uint32, 0, 64)
			var edgeCount int64
			for i := lo; i < hi; i++ {
				v := f[i]
				if dist[v].Load() != uint32(bucketOf[i]) {
					continue // stale: improved and handled elsewhere
				}
				queue = append(queue[:0], v)
				budget := st.tau
				for head := 0; head < len(queue); head++ {
					u := queue[head]
					du := dist[u].Load()
					nd := du + 1
					for _, w := range g.Neighbors(u) {
						edgeCount++
						for {
							old := dist[w].Load()
							if nd >= old {
								break
							}
							if dist[w].CompareAndSwap(old, nd) {
								if budget > 0 {
									queue = append(queue, w)
								} else {
									fr.insert(int(nd), w)
									st.pending.Add(1)
								}
								break
							}
						}
					}
					budget -= g.Degree(u)
					if budget <= 0 && head+1 < len(queue) {
						// Flush the remaining local work to the shared
						// frontier bags.
						for _, w := range queue[head+1:] {
							d := dist[w].Load()
							fr.insert(int(d), w)
							st.pending.Add(1)
						}
						queue = queue[:head+1]
					}
				}
			}
			st.met.AddEdges(edgeCount)
		})
	}
	return pull, push
}

// bfsCompressedScans builds the decode-on-scan round bodies for the
// compressed representation. Top-down bulk-decodes each local-search
// vertex into a per-task scratch buffer (the whole list will be
// relaxed, so one tight decode then the plain relax loop wins);
// bottom-up streams through a cursor because the scan usually abandons
// a list at the first useful in-neighbor, and decoding the rest would
// be pure waste.
func bfsCompressedScans(g *graph.Compressed, st *bfsState) (pull func(cur int), push func(f []uint32, bucketOf []int)) {
	var in *graph.Compressed
	if st.denseCut != math.MaxInt64 {
		// Built by decompress→transpose→recompress on first use; with
		// direction optimization off an mmap-backed graph stays
		// page-in only.
		in = g.Transpose()
	}
	dist, fr := st.dist, st.fr
	pull = func(cur int) {
		target := uint32(cur + 1)
		maxIns := uint32(cur + st.nBags - 1)
		parallel.ForRangeCancel(st.cl.Token(), st.n, 0, func(lo, hi int) {
			var local int64
			nbuf := make([]uint32, 0, 256)
			for vi := lo; vi < hi; vi++ {
				v := uint32(vi)
				best := dist[v].Load()
				if best <= target {
					continue
				}
				// Bulk-decode, then scan the flat slice with early exit.
				// The streaming cursor pays a call per arc; the bulk
				// decode pays for arcs past the exit point — and wins,
				// because an improvable vertex that finds a parent
				// immediately decodes a short prefix anyway (decode cost
				// ~ list bytes), while one that finds none scans the
				// whole list either way.
				nbuf = in.AppendNeighbors(v, nbuf[:0])
				for _, u := range nbuf {
					local++
					if du := dist[u].Load(); du != graph.InfDist && du+1 < best {
						best = du + 1
						if best <= target {
							break
						}
					}
				}
				if best < dist[v].Load() && best <= maxIns {
					dist[v].Store(best)
					fr.insert(int(best), v)
					st.pending.Add(1)
				}
			}
			st.met.AddEdges(local)
		})
	}
	push = func(f []uint32, bucketOf []int) {
		parallel.ForRangeCancel(st.cl.Token(), len(f), 1, func(lo, hi int) {
			queue := make([]uint32, 0, 64)
			nbuf := make([]uint32, 0, 256)
			var edgeCount int64
			for i := lo; i < hi; i++ {
				v := f[i]
				if dist[v].Load() != uint32(bucketOf[i]) {
					continue
				}
				queue = append(queue[:0], v)
				budget := st.tau
				for head := 0; head < len(queue); head++ {
					u := queue[head]
					du := dist[u].Load()
					nd := du + 1
					nbuf = g.AppendNeighbors(u, nbuf[:0])
					for _, w := range nbuf {
						edgeCount++
						for {
							old := dist[w].Load()
							if nd >= old {
								break
							}
							if dist[w].CompareAndSwap(old, nd) {
								if budget > 0 {
									queue = append(queue, w)
								} else {
									fr.insert(int(nd), w)
									st.pending.Add(1)
								}
								break
							}
						}
					}
					budget -= len(nbuf) // == DegreeOf(u), already decoded
					if budget <= 0 && head+1 < len(queue) {
						for _, w := range queue[head+1:] {
							d := dist[w].Load()
							fr.insert(int(d), w)
							st.pending.Add(1)
						}
						queue = queue[:head+1]
					}
				}
			}
			st.met.AddEdges(edgeCount)
		})
	}
	return pull, push
}

// bfsOverlayScans builds the round bodies for the patched overlay
// representation (epoch snapshots from internal/delta). Both directions
// use the overlay's merged bulk scan into a per-task scratch buffer —
// the merge walks the base list anyway, so a streaming early-exit
// variant would save nothing on the skip side; patch-free vertices
// degrade to one bulk copy of the base list.
func bfsOverlayScans(g *graph.Overlay, st *bfsState) (pull func(cur int), push func(f []uint32, bucketOf []int)) {
	var in *graph.Overlay
	if st.denseCut != math.MaxInt64 {
		// Lazy overlay transpose: the (immutable) base's transpose plus
		// reversed patch arrays, built on first use.
		in = g.Transpose()
	}
	dist, fr := st.dist, st.fr
	pull = func(cur int) {
		target := uint32(cur + 1)
		maxIns := uint32(cur + st.nBags - 1)
		parallel.ForRangeCancel(st.cl.Token(), st.n, 0, func(lo, hi int) {
			var local int64
			nbuf := make([]uint32, 0, 256)
			for vi := lo; vi < hi; vi++ {
				v := uint32(vi)
				best := dist[v].Load()
				if best <= target {
					continue
				}
				nbuf = in.AppendNeighbors(v, nbuf[:0])
				for _, u := range nbuf {
					local++
					if du := dist[u].Load(); du != graph.InfDist && du+1 < best {
						best = du + 1
						if best <= target {
							break
						}
					}
				}
				if best < dist[v].Load() && best <= maxIns {
					dist[v].Store(best)
					fr.insert(int(best), v)
					st.pending.Add(1)
				}
			}
			st.met.AddEdges(local)
		})
	}
	push = func(f []uint32, bucketOf []int) {
		parallel.ForRangeCancel(st.cl.Token(), len(f), 1, func(lo, hi int) {
			queue := make([]uint32, 0, 64)
			nbuf := make([]uint32, 0, 256)
			var edgeCount int64
			for i := lo; i < hi; i++ {
				v := f[i]
				if dist[v].Load() != uint32(bucketOf[i]) {
					continue
				}
				queue = append(queue[:0], v)
				budget := st.tau
				for head := 0; head < len(queue); head++ {
					u := queue[head]
					du := dist[u].Load()
					nd := du + 1
					nbuf = g.AppendNeighbors(u, nbuf[:0])
					for _, w := range nbuf {
						edgeCount++
						for {
							old := dist[w].Load()
							if nd >= old {
								break
							}
							if dist[w].CompareAndSwap(old, nd) {
								if budget > 0 {
									queue = append(queue, w)
								} else {
									fr.insert(int(nd), w)
									st.pending.Add(1)
								}
								break
							}
						}
					}
					budget -= len(nbuf) // == DegreeOf(u), already merged
					if budget <= 0 && head+1 < len(queue) {
						for _, w := range queue[head+1:] {
							d := dist[w].Load()
							fr.insert(int(d), w)
							st.pending.Add(1)
						}
						queue = queue[:head+1]
					}
				}
			}
			st.met.AddEdges(edgeCount)
		})
	}
	return pull, push
}

// frontierSet is the rotating set of distance-indexed frontiers: hash bags
// by default, or flat dense boolean arrays for the ablation.
type frontierSet struct {
	bags    []*hashbag.Bag
	flat    [][]atomic.Uint32 // dense variant: bit flags per vertex
	flatN   []atomic.Int64
	n       int
	lastDup int64
}

func newFrontierSet(n, k int, flat bool, tr *trace.Tracer) *frontierSet {
	fs := &frontierSet{n: n}
	if flat {
		fs.flat = make([][]atomic.Uint32, k)
		fs.flatN = make([]atomic.Int64, k)
		for i := range fs.flat {
			fs.flat[i] = make([]atomic.Uint32, (n+31)/32)
		}
		return fs
	}
	fs.bags = make([]*hashbag.Bag, k)
	for i := range fs.bags {
		fs.bags[i] = hashbag.New(64)
		fs.bags[i].SetTracer(tr)
	}
	return fs
}

func (fs *frontierSet) idx(d int) int {
	if fs.bags != nil {
		return d % len(fs.bags)
	}
	return d % len(fs.flat)
}

func (fs *frontierSet) insert(d int, v uint32) {
	i := fs.idx(d)
	if fs.bags != nil {
		fs.bags[i].Insert(v)
		return
	}
	word, bit := v/32, uint32(1)<<(v%32)
	for {
		old := fs.flat[i][word].Load()
		if old&bit != 0 {
			fs.flatN[i].Add(1) // duplicate: still counts as an insert
			return
		}
		if fs.flat[i][word].CompareAndSwap(old, old|bit) {
			fs.flatN[i].Add(1)
			return
		}
	}
}

func (fs *frontierSet) len(d int) int {
	i := fs.idx(d)
	if fs.bags != nil {
		return fs.bags[i].Len()
	}
	return int(fs.flatN[i].Load())
}

// extract drains frontier d. The dense variant pays an O(n/32) scan — the
// cost the hash bag exists to avoid.
func (fs *frontierSet) extract(d int) []uint32 {
	i := fs.idx(d)
	if fs.bags != nil {
		return fs.bags[i].Extract()
	}
	inserts := fs.flatN[i].Swap(0)
	words := fs.flat[i]
	var out []uint32
	lists := make([][]uint32, (len(words)+1023)/1024)
	parallel.For(len(lists), 1, func(b int) {
		lo := b * 1024
		hi := min(lo+1024, len(words))
		var l []uint32
		for w := lo; w < hi; w++ {
			bv := words[w].Swap(0)
			for bv != 0 {
				tz := bits.TrailingZeros32(bv)
				l = append(l, uint32(w*32+tz))
				bv &= bv - 1
			}
		}
		lists[b] = l
	})
	for _, l := range lists {
		out = append(out, l...)
	}
	// The bitmap deduplicates, but callers track pending work by insert
	// count; stash the swallowed-duplicate count for dupDebt.
	fs.lastDup = inserts - int64(len(out))
	return out
}

// lastDup holds, after extract, the number of duplicate inserts swallowed
// by the dense bitmap (the hash bag keeps duplicates so it is always 0
// there). Callers must subtract it from their pending count.
func (fs *frontierSet) dupDebt() int64 {
	d := fs.lastDup
	fs.lastDup = 0
	return d
}
