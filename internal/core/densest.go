package core

import (
	"pasgal/internal/graph"
	"pasgal/internal/parallel"
)

// Bridges returns, for an undirected graph, a flag per arc marking bridge
// edges (edges whose removal disconnects their component). A bridge is
// exactly a biconnected component of size one edge, so this is a direct
// corollary of FAST-BCC.
func Bridges(g *graph.Graph, opt Options) ([]bool, int, *Metrics, error) {
	defer attachRuntimeTracer(opt)()
	res, met, err := BCC(g, opt)
	if err != nil {
		return nil, 0, met, err
	}
	// Count arcs per BCC label; label with exactly 2 arcs = bridge.
	counts := make([]int64, res.NumBCC)
	for _, l := range res.ArcLabel {
		if l != graph.None {
			counts[l]++
		}
	}
	out := make([]bool, len(g.Edges))
	parallel.ForRange(len(g.Edges), 0, func(lo, hi int) {
		for e := lo; e < hi; e++ {
			if l := res.ArcLabel[e]; l != graph.None && counts[l] == 2 {
				out[e] = true
			}
		}
	})
	nBridges := 0
	for _, c := range counts {
		if c == 2 {
			nBridges++
		}
	}
	return out, nBridges, met, nil
}

// DensestSubgraph returns Charikar's greedy-peeling 2-approximation of the
// maximum-density subgraph (density = edges/vertices in the induced
// subgraph): peel vertices in k-core order and return the vertex set of
// the core level that maximizes density — here derived directly from the
// VGC k-core decomposition, exercising the "peeling algorithms" extension
// the paper's conclusion names.
//
// The returned density uses the undirected edge count. The approximation
// bound: density(returned) >= OPT/2 because the max-coreness core has
// min degree >= degeneracy >= OPT... the standard argument applies to the
// peeling *order*; using core levels retains the 2-approximation since the
// densest prefix of the peeling order is a union of core levels' prefixes
// — we evaluate every core level and pick the best, which includes the
// maximum-coreness core achieving >= OPT/2.
func DensestSubgraph(g *graph.Graph, opt Options) ([]uint32, float64, *Metrics, error) {
	if g.Directed {
		panic("core: DensestSubgraph requires an undirected graph")
	}
	defer attachRuntimeTracer(opt)()
	core, degeneracy, met, err := KCore(g, opt)
	if err != nil {
		return nil, 0, met, err
	}
	if g.N == 0 {
		return nil, 0, met, nil
	}
	// For each core level k, the k-core is {v : core[v] >= k}. Compute
	// vertex and edge counts per level with suffix sums.
	vcount := make([]int64, degeneracy+2)
	ecount := make([]int64, degeneracy+2)
	for v := uint32(0); v < uint32(g.N); v++ {
		vcount[core[v]]++
		for _, w := range g.Neighbors(v) {
			if w > v {
				// The edge (v,w) survives in the k-core for k <= min of
				// the two corenesses.
				k := core[v]
				if core[w] < k {
					k = core[w]
				}
				ecount[k]++
			}
		}
	}
	// Suffix sums: level k totals = sum over >= k.
	for k := degeneracy - 1; k >= 0; k-- {
		vcount[k] += vcount[k+1]
		ecount[k] += ecount[k+1]
	}
	bestK, bestDensity := 0, -1.0
	for k := 0; k <= degeneracy; k++ {
		if vcount[k] == 0 {
			continue
		}
		d := float64(ecount[k]) / float64(vcount[k])
		if d > bestDensity {
			bestK, bestDensity = k, d
		}
	}
	verts := parallel.PackIndex(g.N, func(v int) bool { return core[v] >= uint32(bestK) })
	return verts, bestDensity, met, nil
}
