package seq

import "pasgal/internal/graph"

// BCCResult describes a biconnected-component decomposition of a symmetric
// graph: a component label for every arc (both arcs of an undirected edge
// share the label), the component count, and the articulation points.
type BCCResult struct {
	NumBCC    int
	ArcLabel  []uint32 // per arc; graph.None only for graphs with no edges
	IsArtPort []bool   // articulation points ("cut vertices")
}

const noArc = ^uint64(0)

// HopcroftTarjanBCC computes biconnected components with the classic
// Hopcroft–Tarjan algorithm, implemented iteratively. g must be symmetric
// (undirected), deduplicated, and self-loop-free — the invariants
// graph.FromEdges establishes.
func HopcroftTarjanBCC(g *graph.Graph) BCCResult {
	if g.Directed {
		panic("seq: HopcroftTarjanBCC requires an undirected graph")
	}
	n := g.N
	const unset = ^uint32(0)
	disc := make([]uint32, n)
	low := make([]uint32, n)
	for i := range disc {
		disc[i] = unset
	}
	label := make([]uint32, len(g.Edges))
	for i := range label {
		label[i] = graph.None
	}
	artic := make([]bool, n)
	var timer, count uint32

	type frame struct {
		v        uint32
		ei       uint64 // next arc of v to scan
		entryArc uint64 // the arc (parent(v) -> v), noArc for roots
		parentRv uint64 // the arc (v -> parent(v)), noArc for roots
		children int
	}
	frames := make([]frame, 0, 1024)

	// The edge stack carries (source, arcIndex) pairs so the reverse arc of
	// each popped arc can be labeled too.
	type sarc struct {
		src uint32
		e   uint64
	}
	sarcStack := make([]sarc, 0, 1024)

	// popComponent pops arcs up to and including entryArc, assigning them
	// (and their reverse arcs) a fresh component label.
	popComponent := func(entryArc uint64) {
		id := count
		count++
		for {
			se := sarcStack[len(sarcStack)-1]
			sarcStack = sarcStack[:len(sarcStack)-1]
			label[se.e] = id
			if r := g.ReverseArc(se.src, se.e); r != noArc {
				label[r] = id
			}
			if se.e == entryArc {
				return
			}
		}
	}

	for s := 0; s < n; s++ {
		if disc[s] != unset {
			continue
		}
		disc[s] = timer
		low[s] = timer
		timer++
		frames = append(frames, frame{
			v: uint32(s), ei: g.Offsets[s], entryArc: noArc, parentRv: noArc,
		})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ei < g.Offsets[v+1] {
				e := f.ei
				f.ei++
				if e == f.parentRv {
					continue // don't traverse the edge we came in on
				}
				w := g.Edges[e]
				if disc[w] == unset {
					// Tree edge: push and descend.
					sarcStack = append(sarcStack, sarc{v, e})
					f.children++
					disc[w] = timer
					low[w] = timer
					timer++
					frames = append(frames, frame{
						v: w, ei: g.Offsets[w],
						entryArc: e, parentRv: g.ReverseArc(v, e),
					})
				} else if disc[w] < disc[v] {
					// Back edge toward an ancestor: push once (from the
					// deeper endpoint) and update low.
					sarcStack = append(sarcStack, sarc{v, e})
					if disc[w] < low[v] {
						low[v] = disc[w]
					}
				}
				// disc[w] > disc[v]: the forward view of a back edge
				// already handled from w's side; skip.
				continue
			}
			// v finished: return to parent.
			fin := *f
			frames = frames[:len(frames)-1]
			if len(frames) == 0 {
				// Root: articulation iff it has >= 2 DFS children.
				if fin.children >= 2 {
					artic[fin.v] = true
				}
				continue
			}
			pf := &frames[len(frames)-1]
			if low[fin.v] < low[pf.v] {
				low[pf.v] = low[fin.v]
			}
			if low[fin.v] >= disc[pf.v] {
				// pf.v separates fin.v's subtree: one BCC closes here.
				popComponent(fin.entryArc)
				// A non-root parent with such a child is an articulation
				// point; roots are handled by the children count above.
				if pf.entryArc != noArc {
					artic[pf.v] = true
				}
			}
		}
	}
	return BCCResult{NumBCC: int(count), ArcLabel: label, IsArtPort: artic}
}

// CountDistinctLabels returns the number of distinct BCC labels incident to
// vertex v — 2+ means v is a cut vertex (test helper / cross-check).
func CountDistinctLabels(g *graph.Graph, label []uint32, v uint32) int {
	seen := map[uint32]bool{}
	for e := g.Offsets[v]; e < g.Offsets[v+1]; e++ {
		if label[e] != graph.None {
			seen[label[e]] = true
		}
	}
	return len(seen)
}
