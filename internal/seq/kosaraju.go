package seq

import "pasgal/internal/graph"

// KosarajuSCC computes strongly connected components with Kosaraju's
// two-pass algorithm (iterative): a reverse-postorder pass over g, then a
// sweep of the transpose in that order. It exists as an independent oracle
// for cross-checking Tarjan's algorithm and the parallel implementations —
// three algorithms agreeing is a much stronger correctness signal than
// two. Returns labels and the component count.
func KosarajuSCC(g *graph.Graph) ([]uint32, int) {
	n := g.N
	comp := make([]uint32, n)
	for i := range comp {
		comp[i] = graph.None
	}
	if n == 0 {
		return comp, 0
	}
	// Pass 1: vertices in reverse finish order via iterative DFS.
	order := make([]uint32, 0, n)
	visited := make([]bool, n)
	type frame struct {
		v  uint32
		ei uint64
	}
	stack := make([]frame, 0, 1024)
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		stack = append(stack, frame{uint32(s), g.Offsets[s]})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.ei < g.Offsets[f.v+1] {
				w := g.Edges[f.ei]
				f.ei++
				if !visited[w] {
					visited[w] = true
					stack = append(stack, frame{w, g.Offsets[w]})
				}
				continue
			}
			order = append(order, f.v)
			stack = stack[:len(stack)-1]
		}
	}
	// Pass 2: sweep the transpose in reverse finish order.
	tr := g.Transpose()
	var count uint32
	work := make([]uint32, 0, 1024)
	for i := n - 1; i >= 0; i-- {
		root := order[i]
		if comp[root] != graph.None {
			continue
		}
		comp[root] = count
		work = append(work[:0], root)
		for len(work) > 0 {
			u := work[len(work)-1]
			work = work[:len(work)-1]
			for _, w := range tr.Neighbors(u) {
				if comp[w] == graph.None {
					comp[w] = count
					work = append(work, w)
				}
			}
		}
		count++
	}
	return comp, int(count)
}
