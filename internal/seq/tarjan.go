package seq

import "pasgal/internal/graph"

// TarjanSCC computes strongly connected components with Tarjan's algorithm
// (iterative). It returns a label per vertex (labels are arbitrary ids in
// [0, count)) and the number of components.
func TarjanSCC(g *graph.Graph) ([]uint32, int) {
	n := g.N
	const unset = ^uint32(0)
	index := make([]uint32, n)
	low := make([]uint32, n)
	comp := make([]uint32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unset
		comp[i] = unset
	}
	var next uint32
	var count uint32
	stack := make([]uint32, 0, 1024) // Tarjan's vertex stack

	// Explicit DFS frames: vertex + position within its adjacency list.
	type frame struct {
		v  uint32
		ei uint64
	}
	frames := make([]frame, 0, 1024)

	for s := 0; s < n; s++ {
		if index[s] != unset {
			continue
		}
		frames = append(frames, frame{uint32(s), g.Offsets[s]})
		index[s] = next
		low[s] = next
		next++
		stack = append(stack, uint32(s))
		onStack[s] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ei < g.Offsets[v+1] {
				w := g.Edges[f.ei]
				f.ei++
				if index[w] == unset {
					// Tree edge: descend.
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, g.Offsets[w]})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			// v is finished.
			frames = frames[:len(frames)-1]
			if low[v] == index[v] {
				// v is a root: pop its SCC.
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = count
					if w == v {
						break
					}
				}
				count++
			}
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return comp, int(count)
}
