package seq

import (
	"math/rand/v2"
	"testing"

	"pasgal/internal/gen"
	"pasgal/internal/graph"
)

// bruteCoreness applies the definition directly: coreness(v) is the
// largest k such that v survives repeated deletion of vertices with
// degree < k.
func bruteCoreness(g *graph.Graph) []uint32 {
	n := g.N
	core := make([]uint32, n)
	for k := 1; ; k++ {
		alive := make([]bool, n)
		deg := make([]int, n)
		for v := 0; v < n; v++ {
			alive[v] = true
			deg[v] = g.Degree(uint32(v))
		}
		for changed := true; changed; {
			changed = false
			for v := 0; v < n; v++ {
				if alive[v] && deg[v] < k {
					alive[v] = false
					changed = true
					for _, w := range g.Neighbors(uint32(v)) {
						deg[w]--
					}
				}
			}
		}
		any := false
		for v := 0; v < n; v++ {
			if alive[v] {
				core[v] = uint32(k)
				any = true
			}
		}
		if !any {
			return core
		}
	}
}

func TestKCoreAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.IntN(120)
		g := gen.ER(n, rng.IntN(4*n+1), false, uint64(trial))
		want := bruteCoreness(g)
		got, maxCore := KCore(g)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("trial %d: coreness[%d] = %d, want %d", trial, v, got[v], want[v])
			}
		}
		wantMax := 0
		for _, c := range want {
			if int(c) > wantMax {
				wantMax = int(c)
			}
		}
		if maxCore != wantMax {
			t.Fatalf("trial %d: degeneracy %d, want %d", trial, maxCore, wantMax)
		}
	}
}

func TestKCoreClique(t *testing.T) {
	// K5: everyone has coreness 4.
	var edges []graph.Edge
	for i := uint32(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, graph.Edge{U: i, V: j})
		}
	}
	g := graph.FromEdges(5, edges, false, graph.BuildOptions{})
	core, maxc := KCore(g)
	if maxc != 4 {
		t.Fatalf("K5 degeneracy = %d", maxc)
	}
	for v, c := range core {
		if c != 4 {
			t.Fatalf("K5 coreness[%d] = %d", v, c)
		}
	}
}
