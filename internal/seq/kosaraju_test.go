package seq

import (
	"math/rand/v2"
	"testing"

	"pasgal/internal/gen"
)

// Three-way SCC agreement: Kosaraju and Tarjan are independent algorithms;
// their agreement over random digraphs is a strong correctness signal for
// both (and transitively for the parallel implementations tested against
// Tarjan).
func TestKosarajuAgreesWithTarjan(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.IntN(300)
		g := gen.ER(n, rng.IntN(4*n+1), true, uint64(trial))
		kc, kn := KosarajuSCC(g)
		tc, tn := TarjanSCC(g)
		if kn != tn {
			t.Fatalf("trial %d: kosaraju %d comps, tarjan %d", trial, kn, tn)
		}
		if !samePartition(kc, tc) {
			t.Fatalf("trial %d: partitions differ", trial)
		}
	}
}

func TestKosarajuKnownCases(t *testing.T) {
	if _, c := KosarajuSCC(gen.Cycle(10, true)); c != 1 {
		t.Fatalf("cycle = %d", c)
	}
	if _, c := KosarajuSCC(gen.Chain(10, true)); c != 10 {
		t.Fatalf("chain = %d", c)
	}
	// Deep graph, iterative safety.
	if _, c := KosarajuSCC(gen.Chain(200000, true)); c != 200000 {
		t.Fatal("deep chain wrong")
	}
}
