package seq

import (
	"container/heap"

	"pasgal/internal/graph"
)

// InfWeight is the "unreachable" distance for weighted shortest paths.
const InfWeight = ^uint64(0)

type heapItem struct {
	dist uint64
	v    uint32
}

type distHeap []heapItem

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(heapItem)) }
func (h *distHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// Dijkstra returns shortest-path distances from src using a binary heap
// with lazy deletion. g must be weighted with non-negative weights (uint32
// weights guarantee that).
func Dijkstra(g *graph.Graph, src uint32) []uint64 {
	if !g.Weighted() {
		panic("seq: Dijkstra requires a weighted graph")
	}
	dist := make([]uint64, g.N)
	for i := range dist {
		dist[i] = InfWeight
	}
	if g.N == 0 {
		return dist
	}
	dist[src] = 0
	h := &distHeap{{0, src}}
	for h.Len() > 0 {
		it := heap.Pop(h).(heapItem)
		if it.dist != dist[it.v] {
			continue // stale entry
		}
		u := it.v
		wts := g.NeighborWeights(u)
		for i, v := range g.Neighbors(u) {
			nd := it.dist + uint64(wts[i])
			if nd < dist[v] {
				dist[v] = nd
				heap.Push(h, heapItem{nd, v})
			}
		}
	}
	return dist
}

// BellmanFord returns shortest-path distances from src by iterating
// relaxations to a fixpoint. O(n*m) worst case — a test oracle, not a
// baseline.
func BellmanFord(g *graph.Graph, src uint32) []uint64 {
	if !g.Weighted() {
		panic("seq: BellmanFord requires a weighted graph")
	}
	dist := make([]uint64, g.N)
	for i := range dist {
		dist[i] = InfWeight
	}
	if g.N == 0 {
		return dist
	}
	dist[src] = 0
	for changed := true; changed; {
		changed = false
		for u := uint32(0); u < uint32(g.N); u++ {
			du := dist[u]
			if du == InfWeight {
				continue
			}
			wts := g.NeighborWeights(u)
			for i, v := range g.Neighbors(u) {
				if nd := du + uint64(wts[i]); nd < dist[v] {
					dist[v] = nd
					changed = true
				}
			}
		}
	}
	return dist
}
