package seq

import "pasgal/internal/graph"

// KCore computes the coreness of every vertex of an undirected graph with
// the Matula–Beck bucket algorithm (O(n+m)): repeatedly remove a
// minimum-degree vertex; its coreness is the running maximum of the
// degrees at removal time. Returns the coreness array and the maximum
// coreness (the degeneracy).
func KCore(g *graph.Graph) ([]uint32, int) {
	if g.Directed {
		panic("seq: KCore requires an undirected graph")
	}
	n := g.N
	core := make([]uint32, n)
	if n == 0 {
		return core, 0
	}
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(uint32(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort vertices by degree.
	bin := make([]int, maxDeg+2)
	for v := 0; v < n; v++ {
		bin[deg[v]]++
	}
	start := 0
	for d := 0; d <= maxDeg; d++ {
		c := bin[d]
		bin[d] = start
		start += c
	}
	pos := make([]int, n)  // position of vertex in vert
	vert := make([]int, n) // vertices sorted by current degree
	for v := 0; v < n; v++ {
		pos[v] = bin[deg[v]]
		vert[pos[v]] = v
		bin[deg[v]]++
	}
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	k := 0
	for i := 0; i < n; i++ {
		v := vert[i]
		if deg[v] > k {
			k = deg[v]
		}
		core[v] = uint32(k)
		for _, w := range g.Neighbors(uint32(v)) {
			wi := int(w)
			if deg[wi] > deg[v] {
				// Move w one bucket down: swap with the first vertex of
				// its current bucket.
				dw := deg[wi]
				pw := pos[wi]
				pfirst := bin[dw]
				vfirst := vert[pfirst]
				if wi != vfirst {
					vert[pw], vert[pfirst] = vfirst, wi
					pos[wi], pos[vfirst] = pfirst, pw
				}
				bin[dw]++
				deg[wi]--
			}
		}
	}
	maxCore := 0
	for _, c := range core {
		if int(c) > maxCore {
			maxCore = int(c)
		}
	}
	return core, maxCore
}
