// Package seq implements the standard sequential algorithms the paper uses
// as baselines: queue-based BFS, Tarjan's SCC algorithm, the
// Hopcroft–Tarjan biconnectivity algorithm, and Dijkstra's algorithm (plus
// Bellman–Ford as a test oracle). All are iterative — no recursion — so
// they run on billion-hop-deep graphs without blowing the stack.
package seq

import "pasgal/internal/graph"

// BFS returns hop distances from src (graph.InfDist for unreachable
// vertices), using the classic FIFO-queue algorithm.
func BFS(g *graph.Graph, src uint32) []uint32 {
	dist := make([]uint32, g.N)
	for i := range dist {
		dist[i] = graph.InfDist
	}
	if g.N == 0 {
		return dist
	}
	dist[src] = 0
	queue := make([]uint32, 0, 1024)
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.Neighbors(u) {
			if dist[v] == graph.InfDist {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}
