package seq

import (
	"math/rand/v2"
	"testing"

	"pasgal/internal/gen"
	"pasgal/internal/graph"
)

// --- BFS ---

func TestBFSPath(t *testing.T) {
	g := gen.Chain(10, false)
	dist := BFS(g, 0)
	for i := 0; i < 10; i++ {
		if dist[i] != uint32(i) {
			t.Fatalf("dist[%d] = %d", i, dist[i])
		}
	}
	dist = BFS(g, 5)
	if dist[0] != 5 || dist[9] != 4 {
		t.Fatalf("mid-source distances wrong: %v", dist)
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}}, true, graph.BuildOptions{})
	dist := BFS(g, 0)
	if dist[1] != 1 || dist[2] != graph.InfDist || dist[3] != graph.InfDist {
		t.Fatalf("distances: %v", dist)
	}
}

// BFS distances must equal unit-weight shortest paths.
func TestBFSMatchesUnitDijkstra(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.IntN(300)
		g := gen.ER(n, 3*n, trial%2 == 0, uint64(trial))
		wg := gen.AddUniformWeights(g, 1, 1, 1)
		src := uint32(rng.IntN(n))
		bfs := BFS(g, src)
		dij := Dijkstra(wg, src)
		for v := 0; v < n; v++ {
			want := dij[v]
			got := uint64(bfs[v])
			if bfs[v] == graph.InfDist {
				got = InfWeight
			}
			if got != want {
				t.Fatalf("trial %d: dist[%d] = %d, want %d", trial, v, got, want)
			}
		}
	}
}

// --- Tarjan SCC ---

// reachBrute computes reachability from every vertex by DFS (oracle).
func reachBrute(g *graph.Graph) [][]bool {
	n := g.N
	reach := make([][]bool, n)
	for s := 0; s < n; s++ {
		reach[s] = make([]bool, n)
		stack := []uint32{uint32(s)}
		reach[s][s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.Neighbors(u) {
				if !reach[s][v] {
					reach[s][v] = true
					stack = append(stack, v)
				}
			}
		}
	}
	return reach
}

// SamePartition checks two labelings induce the same partition.
func samePartition(a, b []uint32) bool {
	fwd := map[uint32]uint32{}
	bwd := map[uint32]uint32{}
	for i := range a {
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		if y, ok := bwd[b[i]]; ok && y != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		bwd[b[i]] = a[i]
	}
	return true
}

func TestTarjanAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.IntN(60)
		g := gen.ER(n, rng.IntN(4*n+1), true, uint64(100+trial))
		comp, count := TarjanSCC(g)
		reach := reachBrute(g)
		// Same SCC iff mutually reachable.
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				same := reach[u][v] && reach[v][u]
				if (comp[u] == comp[v]) != same {
					t.Fatalf("trial %d: comp[%d]=%d comp[%d]=%d but mutual=%v",
						trial, u, comp[u], v, comp[v], same)
				}
			}
		}
		// Count matches distinct labels.
		seen := map[uint32]bool{}
		for _, c := range comp {
			seen[c] = true
		}
		if len(seen) != count {
			t.Fatalf("trial %d: count=%d distinct=%d", trial, count, len(seen))
		}
	}
}

func TestTarjanKnownCases(t *testing.T) {
	// Directed cycle: one SCC.
	if _, c := TarjanSCC(gen.Cycle(10, true)); c != 1 {
		t.Fatalf("cycle SCCs = %d", c)
	}
	// Directed chain: n SCCs.
	if _, c := TarjanSCC(gen.Chain(10, true)); c != 10 {
		t.Fatalf("chain SCCs = %d", c)
	}
	// Two cycles joined by a one-way edge: 2 SCCs.
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 0}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 2}}
	if _, c := TarjanSCC(graph.FromEdges(4, edges, true, graph.BuildOptions{})); c != 2 {
		t.Fatalf("two-cycle SCCs = %d", c)
	}
}

// --- Hopcroft–Tarjan BCC ---

func checkBCCInvariants(t *testing.T, g *graph.Graph, res BCCResult, name string) {
	t.Helper()
	// Every arc labeled; label symmetric across reverse arcs.
	seen := map[uint32]bool{}
	for u := uint32(0); u < uint32(g.N); u++ {
		for e := g.Offsets[u]; e < g.Offsets[u+1]; e++ {
			l := res.ArcLabel[e]
			if l == graph.None {
				t.Fatalf("%s: arc (%d,%d) unlabeled", name, u, g.Edges[e])
			}
			seen[l] = true
			r := g.ReverseArc(u, e)
			if res.ArcLabel[r] != l {
				t.Fatalf("%s: asymmetric labels on edge (%d,%d)", name, u, g.Edges[e])
			}
		}
	}
	if len(seen) != res.NumBCC {
		t.Fatalf("%s: NumBCC=%d distinct=%d", name, res.NumBCC, len(seen))
	}
	// Articulation points are exactly vertices incident to >= 2 labels.
	for v := uint32(0); v < uint32(g.N); v++ {
		want := CountDistinctLabels(g, res.ArcLabel, v) >= 2
		if res.IsArtPort[v] != want {
			t.Fatalf("%s: artic[%d]=%v, incident labels say %v", name, v, res.IsArtPort[v], want)
		}
	}
}

func TestBCCKnownCases(t *testing.T) {
	// Path: every edge its own BCC; interior vertices articulate.
	g := gen.Chain(5, false)
	res := HopcroftTarjanBCC(g)
	if res.NumBCC != 4 {
		t.Fatalf("path BCCs = %d, want 4", res.NumBCC)
	}
	checkBCCInvariants(t, g, res, "path")
	for v := 1; v <= 3; v++ {
		if !res.IsArtPort[v] {
			t.Fatalf("path: vertex %d should articulate", v)
		}
	}
	if res.IsArtPort[0] || res.IsArtPort[4] {
		t.Fatal("path endpoints should not articulate")
	}

	// Cycle: one BCC, no articulation points.
	g = gen.Cycle(6, false)
	res = HopcroftTarjanBCC(g)
	if res.NumBCC != 1 {
		t.Fatalf("cycle BCCs = %d", res.NumBCC)
	}
	checkBCCInvariants(t, g, res, "cycle")

	// Two triangles sharing vertex 2: two BCCs, vertex 2 articulates.
	edges := []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 2},
	}
	g = graph.FromEdges(5, edges, false, graph.BuildOptions{})
	res = HopcroftTarjanBCC(g)
	if res.NumBCC != 2 {
		t.Fatalf("bowtie BCCs = %d", res.NumBCC)
	}
	if !res.IsArtPort[2] {
		t.Fatal("bowtie: vertex 2 should articulate")
	}
	checkBCCInvariants(t, g, res, "bowtie")

	// Star: each edge its own BCC; center articulates.
	g = gen.Star(5)
	res = HopcroftTarjanBCC(g)
	if res.NumBCC != 4 || !res.IsArtPort[0] {
		t.Fatalf("star: NumBCC=%d artic0=%v", res.NumBCC, res.IsArtPort[0])
	}
	checkBCCInvariants(t, g, res, "star")

	// Theta graph (two vertices joined by three internally disjoint
	// paths): a single BCC.
	edges = []graph.Edge{
		{U: 0, V: 2}, {U: 2, V: 1},
		{U: 0, V: 3}, {U: 3, V: 1},
		{U: 0, V: 4}, {U: 4, V: 1},
	}
	g = graph.FromEdges(5, edges, false, graph.BuildOptions{})
	res = HopcroftTarjanBCC(g)
	if res.NumBCC != 1 {
		t.Fatalf("theta BCCs = %d", res.NumBCC)
	}
	checkBCCInvariants(t, g, res, "theta")

	// Isolated vertices: zero BCCs.
	g = graph.FromEdges(3, nil, false, graph.BuildOptions{})
	res = HopcroftTarjanBCC(g)
	if res.NumBCC != 0 {
		t.Fatalf("empty BCCs = %d", res.NumBCC)
	}
}

// Removing an articulation point must increase the component count of its
// connected component; removing a non-articulation vertex must not.
func TestBCCArticulationSemantics(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.IntN(40)
		g := gen.ER(n, rng.IntN(3*n)+1, false, uint64(200+trial))
		res := HopcroftTarjanBCC(g)
		checkBCCInvariants(t, g, res, "random")
		comps := countComponents(g, graph.None)
		for v := uint32(0); v < uint32(n); v++ {
			without := countComponents(g, v)
			// Removing v drops it from the count; articulation iff the
			// rest splits further.
			split := without > comps-1+boolInt(g.Degree(v) == 0)
			if g.Degree(v) == 0 {
				continue // isolated vertices are never articulation points
			}
			if res.IsArtPort[v] != (without > comps) {
				t.Fatalf("trial %d: artic[%d]=%v but components %d -> %d",
					trial, v, res.IsArtPort[v], comps, without)
			}
			_ = split
		}
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// countComponents counts connected components, optionally skipping one
// vertex (graph.None = skip none). Skipped vertices are not counted.
func countComponents(g *graph.Graph, skip uint32) int {
	n := g.N
	vis := make([]bool, n)
	count := 0
	for s := 0; s < n; s++ {
		if vis[s] || uint32(s) == skip {
			continue
		}
		count++
		stack := []uint32{uint32(s)}
		vis[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.Neighbors(u) {
				if v != skip && !vis[v] {
					vis[v] = true
					stack = append(stack, v)
				}
			}
		}
	}
	return count
}

// --- Dijkstra / Bellman–Ford ---

func TestDijkstraMatchesBellmanFord(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.IntN(200)
		g := gen.AddUniformWeights(
			gen.ER(n, 4*n, trial%2 == 0, uint64(300+trial)), 1, 1000, uint64(trial))
		src := uint32(rng.IntN(n))
		d1 := Dijkstra(g, src)
		d2 := BellmanFord(g, src)
		for v := 0; v < n; v++ {
			if d1[v] != d2[v] {
				t.Fatalf("trial %d: dist[%d]: dijkstra=%d bf=%d", trial, v, d1[v], d2[v])
			}
		}
	}
}

func TestDijkstraChain(t *testing.T) {
	g := gen.AddUniformWeights(gen.Chain(100, true), 2, 2, 1)
	dist := Dijkstra(g, 0)
	for i := 0; i < 100; i++ {
		if dist[i] != uint64(2*i) {
			t.Fatalf("dist[%d] = %d", i, dist[i])
		}
	}
}

// Deep graphs must not blow the stack (iterative implementations).
func TestDeepGraphsIterative(t *testing.T) {
	n := 200000
	chain := gen.Chain(n, false)
	if d := BFS(chain, 0); d[n-1] != uint32(n-1) {
		t.Fatal("bfs deep chain wrong")
	}
	dchain := gen.Chain(n, true)
	if _, c := TarjanSCC(dchain); c != n {
		t.Fatal("tarjan deep chain wrong")
	}
	res := HopcroftTarjanBCC(chain)
	if res.NumBCC != n-1 {
		t.Fatal("bcc deep chain wrong")
	}
}
