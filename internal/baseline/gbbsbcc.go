package baseline

import (
	"sync/atomic"

	"pasgal/internal/core"
	"pasgal/internal/euler"
	"pasgal/internal/graph"
	"pasgal/internal/parallel"
)

// GBBSBCC models GBBS-style biconnectivity: the spanning forest is built
// with level-synchronous parallel BFS (one global round per hop, Θ(D)
// synchronizations on a diameter-D component — the bottleneck the paper
// attributes to GBBS), after which the labeling stages are shared with
// FAST-BCC. Components are processed one BFS at a time, as a BFS-based
// system must.
func GBBSBCC(g *graph.Graph) (core.BCCResult, *core.Metrics) {
	// Without a ctx in Options the run cannot be canceled.
	res, met, _ := GBBSBCCOpt(g, core.Options{})
	return res, met
}

// GBBSBCCOpt is GBBSBCC with Options plumbing (ctx, tracer, and metric
// options only).
func GBBSBCCOpt(g *graph.Graph, opt core.Options) (core.BCCResult, *core.Metrics, error) {
	if g.Directed {
		panic("baseline: GBBSBCC requires an undirected graph")
	}
	met := core.NewMetrics(opt, "gbbs-bcc")
	cl := core.NewCanceler(opt, met)
	defer cl.Close()
	n := g.N
	if n == 0 {
		res, _, err := core.BCCFromForest(g, euler.Build(0, nil), opt)
		if perr := cl.Poll(); perr != nil {
			err = perr
		}
		return res, met, err
	}

	// BFS spanning forest.
	parent := make([]atomic.Uint32, n)
	parallel.For(n, 0, func(i int) { parent[i].Store(graph.None) })
	visited := make([]bool, n)
	var tree []graph.Edge
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		visited[start] = true
		if g.Degree(uint32(start)) == 0 {
			continue // isolated vertex: no tree edges, no BFS to run
		}
		frontier := []uint32{uint32(start)}
		for len(frontier) > 0 {
			// Round boundary: a canceled round invalidates the tree-edge
			// accumulation below (drained chunks claim no parents).
			if err := cl.Poll(); err != nil {
				return core.BCCResult{}, met, err
			}
			met.Round(len(frontier))
			offs := make([]int64, len(frontier))
			parallel.For(len(frontier), 0, func(i int) {
				offs[i] = int64(g.Degree(frontier[i]))
			})
			total := parallel.Scan(offs)
			met.AddEdges(total)
			outv := make([]uint32, total)
			parallel.ForCancel(cl.Token(), len(frontier), 1, func(i int) {
				u := frontier[i]
				at := offs[i]
				for _, w := range g.Neighbors(u) {
					outv[at] = graph.None
					if parent[w].Load() == graph.None && w != uint32(start) &&
						parent[w].CompareAndSwap(graph.None, u) {
						outv[at] = w
					}
					at++
				}
			})
			next := parallel.Pack(outv, func(i int) bool { return outv[i] != graph.None })
			for _, v := range next {
				visited[v] = true
				tree = append(tree, graph.Edge{U: parent[v].Load(), V: v})
			}
			frontier = next
		}
	}

	// Final check before the labeling stages: a canceled drain above would
	// have produced a truncated forest.
	if err := cl.Poll(); err != nil {
		return core.BCCResult{}, met, err
	}
	f := euler.Build(n, tree)
	res, met2, err := core.BCCFromForest(g, f, opt)
	if err != nil {
		return core.BCCResult{}, met, err
	}
	met.AddEdges(met2.EdgesVisited)
	return res, met, nil
}
