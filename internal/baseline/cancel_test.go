package baseline

import (
	"context"
	"errors"
	"testing"
	"time"

	"pasgal/internal/core"
	"pasgal/internal/gen"
	"pasgal/internal/graph"
)

// baselineCancelCases enumerates every cancellable baseline entry point
// (the ...Opt variants; the plain variants have no Options and therefore
// no way to carry a context). dg must be directed and weighted, ug
// undirected and weighted.
func baselineCancelCases(dg, ug *graph.Graph) []struct {
	name string
	run  func(t *testing.T, opt core.Options) (*core.Metrics, error)
} {
	return []struct {
		name string
		run  func(t *testing.T, opt core.Options) (*core.Metrics, error)
	}{
		{"GBBSBFSOpt", func(t *testing.T, opt core.Options) (*core.Metrics, error) {
			dist, met, err := GBBSBFSOpt(dg, 0, opt)
			if err != nil && dist != nil {
				t.Error("returned a distance slice alongside the error")
			}
			return met, err
		}},
		{"GAPBSBFSOpt", func(t *testing.T, opt core.Options) (*core.Metrics, error) {
			dist, met, err := GAPBSBFSOpt(dg, 0, opt)
			if err != nil && dist != nil {
				t.Error("returned a distance slice alongside the error")
			}
			return met, err
		}},
		{"GBBSSCCOpt", func(t *testing.T, opt core.Options) (*core.Metrics, error) {
			comp, count, met, err := GBBSSCCOpt(dg, opt)
			if err != nil && (comp != nil || count != 0) {
				t.Error("returned a result alongside the error")
			}
			return met, err
		}},
		{"MultistepSCCOpt", func(t *testing.T, opt core.Options) (*core.Metrics, error) {
			comp, count, met, err := MultistepSCCOpt(dg, opt)
			if err != nil && (comp != nil || count != 0) {
				t.Error("returned a result alongside the error")
			}
			return met, err
		}},
		{"GBBSBCCOpt", func(t *testing.T, opt core.Options) (*core.Metrics, error) {
			res, met, err := GBBSBCCOpt(ug, opt)
			if err != nil && (res.ArcLabel != nil || res.NumBCC != 0) {
				t.Error("returned a result alongside the error")
			}
			return met, err
		}},
		{"TarjanVishkinBCCOpt", func(t *testing.T, opt core.Options) (*core.Metrics, error) {
			res, met, _, err := TarjanVishkinBCCOpt(ug, opt)
			if err != nil && (res.ArcLabel != nil || res.NumBCC != 0) {
				t.Error("returned a result alongside the error")
			}
			return met, err
		}},
		{"GBBSBellmanFordSSSPOpt", func(t *testing.T, opt core.Options) (*core.Metrics, error) {
			dist, met, err := GBBSBellmanFordSSSPOpt(ug, 0, opt)
			if err != nil && dist != nil {
				t.Error("returned a distance slice alongside the error")
			}
			return met, err
		}},
		{"DeltaSteppingSSSPOpt", func(t *testing.T, opt core.Options) (*core.Metrics, error) {
			dist, met, err := DeltaSteppingSSSPOpt(ug, 0, 8, opt)
			if err != nil && dist != nil {
				t.Error("returned a distance slice alongside the error")
			}
			return met, err
		}},
	}
}

// TestBaselineCancelPreCanceled: the competing systems honor the same
// cancellation contract as the PASGAL drivers — a pre-canceled Ctx returns
// ErrCanceled with Metrics and no result.
func TestBaselineCancelPreCanceled(t *testing.T) {
	dg := gen.AddUniformWeights(gen.Chain(2000, true), 1, 10, 61)
	ug := gen.AddUniformWeights(gen.Chain(2000, false), 1, 10, 62)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range baselineCancelCases(dg, ug) {
		t.Run(tc.name, func(t *testing.T) {
			met, err := tc.run(t, core.Options{Ctx: ctx})
			if !errors.Is(err, core.ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled", err)
			}
			if met == nil {
				t.Fatal("nil Metrics alongside the cancellation error")
			}
		})
	}
}

// TestBaselineCancelDeadlineExpired: expired deadlines map to ErrDeadline
// for the baselines too.
func TestBaselineCancelDeadlineExpired(t *testing.T) {
	dg := gen.AddUniformWeights(gen.Chain(2000, true), 1, 10, 63)
	ug := gen.AddUniformWeights(gen.Chain(2000, false), 1, 10, 64)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()
	for _, tc := range baselineCancelCases(dg, ug) {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.run(t, core.Options{Ctx: ctx}); !errors.Is(err, core.ErrDeadline) {
				t.Fatalf("err = %v, want ErrDeadline", err)
			}
		})
	}
}

// TestBaselineCancelNilCtxCompletes: the zero Options still means run to
// completion for every baseline.
func TestBaselineCancelNilCtxCompletes(t *testing.T) {
	dg := gen.AddUniformWeights(gen.Chain(500, true), 1, 10, 65)
	ug := gen.AddUniformWeights(gen.Chain(500, false), 1, 10, 66)
	for _, tc := range baselineCancelCases(dg, ug) {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.run(t, core.Options{}); err != nil {
				t.Fatalf("unexpected error without a Ctx: %v", err)
			}
		})
	}
}

// TestBaselineCancelMidRun cancels each baseline shortly after launch on a
// long chain (the GBBS baselines' worst case: one round per hop). The run
// must come back with ErrCanceled, not a result.
func TestBaselineCancelMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-run cancellation sweep; skipped with -short")
	}
	const n = 200_000
	dg := gen.AddUniformWeights(gen.Chain(n, true), 1, 10, 67)
	ug := gen.AddUniformWeights(gen.Chain(n, false), 1, 10, 68)
	for _, tc := range baselineCancelCases(dg, ug) {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go func() {
				time.Sleep(500 * time.Microsecond)
				cancel()
			}()
			met, err := tc.run(t, core.Options{Ctx: ctx})
			if err == nil {
				// The run beat the cancel; nothing to assert (the result
				// path is covered by the agreement tests).
				t.Skip("run completed before the cancel landed")
			}
			if !errors.Is(err, core.ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled", err)
			}
			if met == nil {
				t.Fatal("nil Metrics alongside the cancellation error")
			}
		})
	}
}
