package baseline

import (
	"sync/atomic"

	"pasgal/internal/core"
	"pasgal/internal/graph"
	"pasgal/internal/parallel"
	"pasgal/internal/seq"
)

// multistepSeqCutoff is the live-set size below which Multistep hands the
// remainder to sequential Tarjan, as in the original implementation.
const multistepSeqCutoff = 256

// MultistepSCC is the SCC algorithm of Slota, Rajamanickam and Madduri
// (IPDPS'14): iterative trimming of size-1 SCCs, one forward/backward
// reachability sweep from a single high-degree pivot (level-synchronous
// BFS), then rounds of max-color propagation with per-color backward
// sweeps, finishing the tail sequentially with Tarjan's algorithm.
func MultistepSCC(g *graph.Graph) ([]uint32, int, *core.Metrics) {
	// Without a ctx in Options the run cannot be canceled.
	comp, count, met, _ := MultistepSCCOpt(g, core.Options{})
	return comp, count, met
}

// MultistepSCCOpt is MultistepSCC with Options plumbing (ctx, tracer, and
// metric options only).
func MultistepSCCOpt(g *graph.Graph, opt core.Options) ([]uint32, int, *core.Metrics, error) {
	if !g.Directed {
		panic("baseline: MultistepSCC requires a directed graph")
	}
	met := core.NewMetrics(opt, "multistep-scc")
	cl := core.NewCanceler(opt, met)
	defer cl.Close()
	n := g.N
	comp := make([]uint32, n)
	parallel.Fill(comp, graph.None)
	if n == 0 {
		return comp, 0, met, cl.Poll()
	}
	tr := g.Transpose()
	live := parallel.PackIndex(n, func(int) bool { return true })

	liveNeighbor := func(gg *graph.Graph, v uint32) bool {
		for _, w := range gg.Neighbors(v) {
			if w != v && comp[w] == graph.None {
				return true
			}
		}
		return false
	}

	// Step 1: trim to fixpoint (capped).
	for t := 0; t < 5 && len(live) > 0; t++ {
		if err := cl.Poll(); err != nil {
			return nil, 0, met, err
		}
		trimmed := parallel.Pack(live, func(i int) bool {
			v := live[i]
			return !liveNeighbor(g, v) || !liveNeighbor(tr, v)
		})
		if len(trimmed) == 0 {
			break
		}
		parallel.For(len(trimmed), 0, func(i int) { comp[trimmed[i]] = trimmed[i] })
		live = parallel.Pack(live, func(i int) bool { return comp[live[i]] == graph.None })
	}

	// Step 2: FW-BW from the max degree-product pivot (expected to hit the
	// giant SCC of a power-law graph).
	if len(live) > 0 {
		if err := cl.Poll(); err != nil {
			return nil, 0, met, err
		}
		met.AddPhase()
		best := parallel.MaxIndex(len(live), func(i int) int64 {
			v := live[i]
			return int64(g.Degree(v)+1) * int64(tr.Degree(v)+1)
		})
		pivot := live[best]
		fwd, err := markReach(g, comp, pivot, met, cl)
		if err != nil {
			return nil, 0, met, err
		}
		bwd, err := markReach(tr, comp, pivot, met, cl)
		if err != nil {
			return nil, 0, met, err
		}
		parallel.For(len(live), 0, func(i int) {
			v := live[i]
			if fwd[v] && bwd[v] {
				comp[v] = pivot
			}
		})
		live = parallel.Pack(live, func(i int) bool { return comp[live[i]] == graph.None })
	}

	// Step 3: coloring rounds.
	color := make([]atomic.Uint32, n)
	for len(live) > multistepSeqCutoff {
		// Phase boundary: canceled color propagation leaves the coloring
		// fixpoint unreached, which would settle wrong components.
		if err := cl.Poll(); err != nil {
			return nil, 0, met, err
		}
		met.AddPhase()
		parallel.For(len(live), 0, func(i int) { color[live[i]].Store(live[i]) })
		// Propagate the maximum color forward to a fixpoint.
		frontier := append([]uint32(nil), live...)
		for len(frontier) > 0 {
			if err := cl.Poll(); err != nil {
				return nil, 0, met, err
			}
			met.Round(len(frontier))
			offs := make([]int64, len(frontier))
			parallel.For(len(frontier), 0, func(i int) {
				offs[i] = int64(g.Degree(frontier[i]))
			})
			total := parallel.Scan(offs)
			met.AddEdges(total)
			outv := make([]uint32, total)
			parallel.ForCancel(cl.Token(), len(frontier), 1, func(i int) {
				u := frontier[i]
				cu := color[u].Load()
				at := offs[i]
				for _, w := range g.Neighbors(u) {
					outv[at] = graph.None
					if comp[w] == graph.None {
						for {
							old := color[w].Load()
							if cu <= old {
								break
							}
							if color[w].CompareAndSwap(old, cu) {
								outv[at] = w
								break
							}
						}
					}
					at++
				}
			})
			frontier = parallel.Pack(outv, func(i int) bool { return outv[i] != graph.None })
		}
		// Backward sweep from every color root within its color class.
		roots := parallel.Pack(live, func(i int) bool {
			return color[live[i]].Load() == live[i]
		})
		settled := make([]atomic.Uint32, n)
		parallel.For(len(roots), 0, func(i int) { settled[roots[i]].Store(1) })
		frontier = roots
		for len(frontier) > 0 {
			if err := cl.Poll(); err != nil {
				return nil, 0, met, err
			}
			met.Round(len(frontier))
			offs := make([]int64, len(frontier))
			parallel.For(len(frontier), 0, func(i int) {
				offs[i] = int64(tr.Degree(frontier[i]))
			})
			total := parallel.Scan(offs)
			met.AddEdges(total)
			outv := make([]uint32, total)
			parallel.ForCancel(cl.Token(), len(frontier), 1, func(i int) {
				u := frontier[i]
				cu := color[u].Load()
				at := offs[i]
				for _, w := range tr.Neighbors(u) {
					outv[at] = graph.None
					if comp[w] == graph.None && color[w].Load() == cu &&
						settled[w].Load() == 0 && settled[w].CompareAndSwap(0, 1) {
						outv[at] = w
					}
					at++
				}
			})
			frontier = parallel.Pack(outv, func(i int) bool { return outv[i] != graph.None })
		}
		parallel.For(len(live), 0, func(i int) {
			v := live[i]
			if settled[v].Load() == 1 {
				comp[v] = color[v].Load()
			}
		})
		live = parallel.Pack(live, func(i int) bool { return comp[live[i]] == graph.None })
	}

	// Step 4: sequential Tarjan on the induced remainder.
	if len(live) > 0 {
		if err := cl.Poll(); err != nil {
			return nil, 0, met, err
		}
		met.AddPhase()
		idx := make(map[uint32]uint32, len(live))
		for i, v := range live {
			idx[v] = uint32(i)
		}
		var edges []graph.Edge
		for i, v := range live {
			for _, w := range g.Neighbors(v) {
				if j, ok := idx[w]; ok {
					edges = append(edges, graph.Edge{U: uint32(i), V: j})
				}
			}
		}
		sg := graph.FromEdges(len(live), edges, true, graph.BuildOptions{})
		sub, subCount := seq.TarjanSCC(sg)
		// Canonical representative: minimum original id per sub-component.
		rep := make([]uint32, subCount)
		for i := range rep {
			rep[i] = graph.None
		}
		for i, v := range live {
			if v < rep[sub[i]] {
				rep[sub[i]] = v
			}
		}
		for i, v := range live {
			comp[v] = rep[sub[i]]
		}
	}

	// Final check before counting (see GBBSSCCOpt).
	if err := cl.Poll(); err != nil {
		return nil, 0, met, err
	}
	count := parallel.Count(n, func(v int) bool { return comp[v] == uint32(v) })
	return comp, count, met, nil
}

// markReach marks all live vertices reachable from src with a level-
// synchronous BFS.
func markReach(g *graph.Graph, comp []uint32, src uint32, met *core.Metrics,
	cl *core.Canceler) ([]bool, error) {

	n := g.N
	mark := make([]atomic.Uint32, n)
	mark[src].Store(1)
	frontier := []uint32{src}
	for len(frontier) > 0 {
		if err := cl.Poll(); err != nil {
			return nil, err
		}
		met.Round(len(frontier))
		offs := make([]int64, len(frontier))
		parallel.For(len(frontier), 0, func(i int) {
			offs[i] = int64(g.Degree(frontier[i]))
		})
		total := parallel.Scan(offs)
		met.AddEdges(total)
		outv := make([]uint32, total)
		parallel.ForCancel(cl.Token(), len(frontier), 1, func(i int) {
			u := frontier[i]
			at := offs[i]
			for _, w := range g.Neighbors(u) {
				outv[at] = graph.None
				if comp[w] == graph.None && mark[w].Load() == 0 &&
					mark[w].CompareAndSwap(0, 1) {
					outv[at] = w
				}
				at++
			}
		})
		frontier = parallel.Pack(outv, func(i int) bool { return outv[i] != graph.None })
	}
	if err := cl.Poll(); err != nil {
		return nil, err
	}
	out := make([]bool, n)
	parallel.For(n, 0, func(i int) { out[i] = mark[i].Load() == 1 })
	return out, nil
}
