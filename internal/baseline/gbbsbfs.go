// Package baseline implements the competing systems the paper measures
// PASGAL against, re-created in Go over the same substrates: GBBS-style and
// GAPBS-style direction-optimizing BFS, a GBBS-style BFS-reachability SCC,
// the Multistep SCC of Slota et al., Tarjan–Vishkin biconnectivity with its
// O(m) auxiliary graph, a GBBS-style BFS-spanning-tree biconnectivity, and
// classic bucketed Δ-stepping SSSP. All of them are *level-synchronous*:
// every hop of every traversal is a global round — exactly the behavior
// whose cost on large-diameter graphs the paper quantifies.
package baseline

import (
	"sync/atomic"

	"pasgal/internal/core"
	"pasgal/internal/graph"
	"pasgal/internal/parallel"
)

// GBBSBFS is a GBBS-style edge-map BFS: a sparse frontier mapped top-down
// with CAS visits and a scan-allocated output, switching to a bottom-up
// sweep when the frontier covers enough of the edge set (direction
// optimization). One global synchronization per hop.
func GBBSBFS(g *graph.Graph, src uint32) ([]uint32, *core.Metrics) {
	// Without a ctx in Options the run cannot be canceled.
	out, met, _ := GBBSBFSOpt(g, src, core.Options{})
	return out, met
}

// GBBSBFSOpt is GBBSBFS with Options plumbing (only the ctx, tracer, and
// metric options apply; the algorithmic knobs are PASGAL's, not GBBS's).
func GBBSBFSOpt(g *graph.Graph, src uint32, opt core.Options) ([]uint32, *core.Metrics, error) {
	met := core.NewMetrics(opt, "gbbs-bfs")
	cl := core.NewCanceler(opt, met)
	defer cl.Close()
	n := g.N
	dist := make([]atomic.Uint32, n)
	parallel.For(n, 0, func(i int) { dist[i].Store(graph.InfDist) })
	out := make([]uint32, n)
	if n == 0 {
		return out, met, cl.Poll()
	}
	in := g.Transpose()
	m := int64(len(g.Edges))

	dist[src].Store(0)
	frontier := []uint32{src}
	for round := uint32(0); len(frontier) > 0; round++ {
		if err := cl.Poll(); err != nil {
			return nil, met, err
		}
		met.Round(len(frontier))
		outEdges := parallel.Sum(len(frontier), func(i int) int64 {
			return int64(g.Degree(frontier[i]))
		})
		if outEdges+int64(len(frontier)) > m/20 {
			// Bottom-up (dense) round: mark pass, then a pure pack (the
			// pack predicate must be side-effect free because it is
			// evaluated twice).
			met.AddBottomUp()
			var visited int64
			parallel.ForRangeCancel(cl.Token(), n, 0, func(lo, hi int) {
				var local int64
				for vi := lo; vi < hi; vi++ {
					v := uint32(vi)
					if dist[v].Load() != graph.InfDist {
						continue
					}
					for _, u := range in.Neighbors(v) {
						local++
						if dist[u].Load() == round {
							dist[v].Store(round + 1)
							break
						}
					}
				}
				atomic.AddInt64(&visited, local)
			})
			met.AddEdges(visited)
			frontier = parallel.PackIndex(n, func(vi int) bool {
				return dist[vi].Load() == round+1
			})
			continue
		}
		// Top-down (sparse) round: scan-allocated neighbor output, CAS
		// winners only.
		offs := make([]int64, len(frontier))
		parallel.For(len(frontier), 0, func(i int) {
			offs[i] = int64(g.Degree(frontier[i]))
		})
		total := parallel.Scan(offs)
		met.AddEdges(total)
		outv := make([]uint32, total)
		parallel.ForCancel(cl.Token(), len(frontier), 1, func(i int) {
			u := frontier[i]
			at := offs[i]
			for _, w := range g.Neighbors(u) {
				if dist[w].Load() == graph.InfDist &&
					dist[w].CompareAndSwap(graph.InfDist, round+1) {
					outv[at] = w
				} else {
					outv[at] = graph.None
				}
				at++
			}
		})
		frontier = parallel.Pack(outv, func(i int) bool { return outv[i] != graph.None })
	}
	// Final check before materializing: a canceled round's drained chunks
	// leave outv holding stale zero values that pack into a bogus frontier.
	if err := cl.Poll(); err != nil {
		return nil, met, err
	}
	parallel.For(n, 0, func(i int) { out[i] = dist[i].Load() })
	return out, met, nil
}
