package baseline

import (
	"sync"
	"sync/atomic"

	"pasgal/internal/core"
	"pasgal/internal/graph"
	"pasgal/internal/parallel"
)

// bucketRing is the classic Δ-stepping bucket structure: a circular array
// of mutex-guarded vertex lists, wide enough that every tentative distance
// in flight fits in the window.
type bucketRing struct {
	buckets []struct {
		mu    sync.Mutex
		items []uint32
	}
}

func newBucketRing(k int) *bucketRing {
	r := &bucketRing{}
	r.buckets = make([]struct {
		mu    sync.Mutex
		items []uint32
	}, k)
	return r
}

func (r *bucketRing) add(b int, v uint32) {
	s := &r.buckets[b%len(r.buckets)]
	s.mu.Lock()
	s.items = append(s.items, v)
	s.mu.Unlock()
}

func (r *bucketRing) take(b int) []uint32 {
	s := &r.buckets[b%len(r.buckets)]
	s.mu.Lock()
	items := s.items
	s.items = nil
	s.mu.Unlock()
	return items
}

// DeltaSteppingSSSP is plain Meyer–Sanders Δ-stepping with level-
// synchronous bucket processing and no VGC: every relaxation round-trips
// through the shared buckets, one global synchronization per inner round.
// delta <= 0 picks a heuristic Δ (average edge weight).
func DeltaSteppingSSSP(g *graph.Graph, src uint32, delta uint64) ([]uint64, *core.Metrics) {
	// Without a ctx in Options the run cannot be canceled.
	out, met, _ := DeltaSteppingSSSPOpt(g, src, delta, core.Options{})
	return out, met
}

// DeltaSteppingSSSPOpt is DeltaSteppingSSSP with Options plumbing (ctx,
// tracer, and metric options only; Δ remains this baseline's own
// parameter).
func DeltaSteppingSSSPOpt(g *graph.Graph, src uint32, delta uint64, opt core.Options) ([]uint64, *core.Metrics, error) {
	if !g.Weighted() {
		panic("baseline: DeltaSteppingSSSP requires a weighted graph")
	}
	met := core.NewMetrics(opt, "delta-sssp")
	cl := core.NewCanceler(opt, met)
	defer cl.Close()
	n := g.N
	dist := make([]atomic.Uint64, n)
	parallel.For(n, 0, func(i int) { dist[i].Store(core.InfWeight) })
	out := make([]uint64, n)
	if n == 0 {
		return out, met, cl.Poll()
	}
	if len(g.Edges) == 0 {
		dist[src].Store(0)
		parallel.For(n, 0, func(i int) { out[i] = dist[i].Load() })
		return out, met, cl.Poll()
	}
	if delta == 0 {
		total := parallel.Sum(len(g.Weights), func(i int) uint64 { return uint64(g.Weights[i]) })
		delta = total/uint64(len(g.Weights)) + 1
	}
	maxW := uint64(parallel.Max(len(g.Weights), func(i int) uint32 { return g.Weights[i] }))
	// All in-flight distances live within [kΔ, kΔ + maxW + Δ): a window of
	// maxW/Δ + 2 buckets.
	ring := newBucketRing(int(maxW/delta) + 2)
	var pending atomic.Int64

	dist[src].Store(0)
	ring.add(0, src)
	pending.Store(1)

	for k := 0; pending.Load() > 0; k++ {
		// Phase boundary check; the inner loop re-polls before every take,
		// but an empty bucket must not advance the phase uncancelled.
		if err := cl.Poll(); err != nil {
			return nil, met, err
		}
		lo, hi := uint64(k)*delta, uint64(k+1)*delta
		// A vertex can be improved within its own bucket (light edges), so
		// the bucket is reprocessed until it stops refilling.
		for {
			// Round boundary: a canceled round invalidates the pending
			// count (drained chunks never re-add their discoveries).
			if err := cl.Poll(); err != nil {
				return nil, met, err
			}
			f := ring.take(k)
			if len(f) == 0 {
				break
			}
			pending.Add(int64(-len(f)))
			met.Round(len(f))
			parallel.ForRangeCancel(cl.Token(), len(f), 1, func(flo, fhi int) {
				var edges int64
				for i := flo; i < fhi; i++ {
					u := f[i]
					du := dist[u].Load()
					if du < lo || du >= hi {
						continue // stale (processed in an earlier bucket)
					}
					wts := g.NeighborWeights(u)
					for j, w := range g.Neighbors(u) {
						edges++
						nd := du + uint64(wts[j])
						for {
							old := dist[w].Load()
							if nd >= old {
								break
							}
							if dist[w].CompareAndSwap(old, nd) {
								ring.add(int(nd/delta), w)
								pending.Add(1)
								break
							}
						}
					}
				}
				met.AddEdges(edges)
			})
		}
		met.AddPhase()
	}
	// Final check before materializing (see GBBSBFSOpt).
	if err := cl.Poll(); err != nil {
		return nil, met, err
	}
	parallel.For(n, 0, func(i int) { out[i] = dist[i].Load() })
	return out, met, nil
}
