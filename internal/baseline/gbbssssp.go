package baseline

import (
	"sync/atomic"

	"pasgal/internal/core"
	"pasgal/internal/graph"
	"pasgal/internal/parallel"
)

// GBBSBellmanFordSSSP is a GBBS-style SSSP: sparse-frontier parallel
// Bellman–Ford (edge-map with write-min, next frontier = improved
// vertices), one global round per relaxation wave. Work-inefficient
// relative to Δ-stepping on heavy-tailed weight ranges but simple and
// level-synchronous — the profile of GBBS's general-weight SSSP.
func GBBSBellmanFordSSSP(g *graph.Graph, src uint32) ([]uint64, *core.Metrics) {
	// Without a ctx in Options the run cannot be canceled.
	out, met, _ := GBBSBellmanFordSSSPOpt(g, src, core.Options{})
	return out, met
}

// GBBSBellmanFordSSSPOpt is GBBSBellmanFordSSSP with Options plumbing
// (ctx, tracer, and metric options only).
func GBBSBellmanFordSSSPOpt(g *graph.Graph, src uint32, opt core.Options) ([]uint64, *core.Metrics, error) {
	if !g.Weighted() {
		panic("baseline: GBBSBellmanFordSSSP requires a weighted graph")
	}
	met := core.NewMetrics(opt, "gbbs-sssp")
	cl := core.NewCanceler(opt, met)
	defer cl.Close()
	n := g.N
	dist := make([]atomic.Uint64, n)
	parallel.For(n, 0, func(i int) { dist[i].Store(core.InfWeight) })
	out := make([]uint64, n)
	if n == 0 {
		return out, met, cl.Poll()
	}
	dist[src].Store(0)
	frontier := []uint32{src}
	inNext := make([]atomic.Uint32, n) // dedup claims for the next frontier
	for len(frontier) > 0 {
		if err := cl.Poll(); err != nil {
			return nil, met, err
		}
		met.Round(len(frontier))
		offs := make([]int64, len(frontier))
		parallel.For(len(frontier), 0, func(i int) {
			offs[i] = int64(g.Degree(frontier[i]))
		})
		total := parallel.Scan(offs)
		met.AddEdges(total)
		outv := make([]uint32, total)
		parallel.ForCancel(cl.Token(), len(frontier), 1, func(i int) {
			u := frontier[i]
			du := dist[u].Load()
			wts := g.NeighborWeights(u)
			at := offs[i]
			for j, w := range g.Neighbors(u) {
				outv[at] = graph.None
				nd := du + uint64(wts[j])
				for {
					old := dist[w].Load()
					if nd >= old {
						break
					}
					if dist[w].CompareAndSwap(old, nd) {
						// First improver of w this round claims the
						// frontier slot; later improvers just lower dist.
						if inNext[w].CompareAndSwap(0, 1) {
							outv[at] = w
						}
						break
					}
				}
				at++
			}
		})
		frontier = parallel.Pack(outv, func(i int) bool { return outv[i] != graph.None })
		parallel.For(len(frontier), 0, func(i int) { inNext[frontier[i]].Store(0) })
	}
	// Final check before materializing (see GBBSBFSOpt).
	if err := cl.Poll(); err != nil {
		return nil, met, err
	}
	parallel.For(n, 0, func(i int) { out[i] = dist[i].Load() })
	return out, met, nil
}
