package baseline

import (
	"sync/atomic"

	"pasgal/internal/core"
	"pasgal/internal/graph"
	"pasgal/internal/parallel"
)

// GAPBSBFS is a GAPBS-style direction-optimizing BFS (Beamer's alpha/beta
// hysteresis): top-down rounds until the frontier's edge mass exceeds
// 1/alpha of the unexplored edges, then bitmap-based bottom-up rounds until
// the frontier shrinks below n/beta.
func GAPBSBFS(g *graph.Graph, src uint32) ([]uint32, *core.Metrics) {
	// Without a ctx in Options the run cannot be canceled.
	out, met, _ := GAPBSBFSOpt(g, src, core.Options{})
	return out, met
}

// GAPBSBFSOpt is GAPBSBFS with Options plumbing (ctx, tracer, and metric
// options only; alpha/beta stay fixed at GAPBS's published constants).
func GAPBSBFSOpt(g *graph.Graph, src uint32, opt core.Options) ([]uint32, *core.Metrics, error) {
	const alpha, beta = 15, 18
	met := core.NewMetrics(opt, "gapbs-bfs")
	cl := core.NewCanceler(opt, met)
	defer cl.Close()
	n := g.N
	dist := make([]atomic.Uint32, n)
	parallel.For(n, 0, func(i int) { dist[i].Store(graph.InfDist) })
	out := make([]uint32, n)
	if n == 0 {
		return out, met, cl.Poll()
	}
	in := g.Transpose()

	dist[src].Store(0)
	frontier := []uint32{src}
	edgesRemaining := int64(len(g.Edges)) - int64(g.Degree(src))
	bottomUp := false
	frontierEdges := int64(g.Degree(src))

	for round := uint32(0); len(frontier) > 0; round++ {
		if err := cl.Poll(); err != nil {
			return nil, met, err
		}
		met.Round(len(frontier))
		if !bottomUp && frontierEdges > edgesRemaining/alpha {
			bottomUp = true
		}
		if bottomUp && int64(len(frontier)) < int64(n)/beta {
			bottomUp = false
		}
		var next []uint32
		if bottomUp {
			met.AddBottomUp()
			// Bitmap of the current frontier for O(1) membership.
			bitmap := make([]atomic.Uint32, (n+31)/32)
			parallel.For(len(frontier), 0, func(i int) {
				v := frontier[i]
				w, b := v/32, uint32(1)<<(v%32)
				for {
					old := bitmap[w].Load()
					if old&b != 0 || bitmap[w].CompareAndSwap(old, old|b) {
						break
					}
				}
			})
			var visited int64
			parallel.ForRangeCancel(cl.Token(), n, 0, func(lo, hi int) {
				var local int64
				for vi := lo; vi < hi; vi++ {
					v := uint32(vi)
					if dist[v].Load() != graph.InfDist {
						continue
					}
					for _, u := range in.Neighbors(v) {
						local++
						if bitmap[u/32].Load()&(1<<(u%32)) != 0 {
							dist[v].Store(round + 1)
							break
						}
					}
				}
				atomic.AddInt64(&visited, local)
			})
			// The pack predicate must be pure (it runs twice).
			next = parallel.PackIndex(n, func(vi int) bool {
				return dist[vi].Load() == round+1
			})
			met.AddEdges(visited)
		} else {
			offs := make([]int64, len(frontier))
			parallel.For(len(frontier), 0, func(i int) {
				offs[i] = int64(g.Degree(frontier[i]))
			})
			total := parallel.Scan(offs)
			met.AddEdges(total)
			outv := make([]uint32, total)
			parallel.ForCancel(cl.Token(), len(frontier), 1, func(i int) {
				u := frontier[i]
				at := offs[i]
				for _, w := range g.Neighbors(u) {
					if dist[w].Load() == graph.InfDist &&
						dist[w].CompareAndSwap(graph.InfDist, round+1) {
						outv[at] = w
					} else {
						outv[at] = graph.None
					}
					at++
				}
			})
			next = parallel.Pack(outv, func(i int) bool { return outv[i] != graph.None })
		}
		frontierEdges = parallel.Sum(len(next), func(i int) int64 {
			return int64(g.Degree(next[i]))
		})
		edgesRemaining -= frontierEdges
		frontier = next
	}
	// Final check before materializing (see GBBSBFSOpt).
	if err := cl.Poll(); err != nil {
		return nil, met, err
	}
	parallel.For(n, 0, func(i int) { out[i] = dist[i].Load() })
	return out, met, nil
}
