package baseline

import (
	"math/rand/v2"
	"testing"

	"pasgal/internal/core"
	"pasgal/internal/gen"
	"pasgal/internal/graph"
	"pasgal/internal/seq"
)

func suite(directed bool) map[string]*graph.Graph {
	gs := map[string]*graph.Graph{
		"chain":  gen.Chain(1500, directed),
		"cycle":  gen.Cycle(1000, directed),
		"grid":   gen.Grid2D(30, 40, directed, 1),
		"rmat":   gen.SocialRMAT(10, 8, directed, 2),
		"er":     gen.ER(800, 2500, directed, 3),
		"sparse": gen.ER(900, 400, directed, 4),
	}
	if directed {
		gs["weblike"] = gen.WebLike(3000, 6, 0.3, 40, 5)
	} else {
		gs["knn"] = gen.KNN(1200, 4, 8, false, 6)
		gs["star"] = gen.Star(300)
	}
	return gs
}

func samePartition(t *testing.T, name string, a, b []uint32) {
	t.Helper()
	fwd := map[uint32]uint32{}
	bwd := map[uint32]uint32{}
	for i := range a {
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			t.Fatalf("%s: partition mismatch at %d", name, i)
		}
		if y, ok := bwd[b[i]]; ok && y != a[i] {
			t.Fatalf("%s: partition mismatch at %d", name, i)
		}
		fwd[a[i]] = b[i]
		bwd[b[i]] = a[i]
	}
}

// --- BFS baselines ---

func TestGBBSBFSMatchesSequential(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for name, g := range suite(directed) {
			want := seq.BFS(g, 0)
			got, met := GBBSBFS(g, 0)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s: dist[%d] = %d, want %d", name, v, got[v], want[v])
				}
			}
			if name == "chain" && met.Rounds < 1400 {
				t.Fatalf("level-synchronous BFS should take ~n rounds on a chain, got %d", met.Rounds)
			}
		}
	}
}

func TestGAPBSBFSMatchesSequential(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for name, g := range suite(directed) {
			want := seq.BFS(g, 0)
			got, _ := GAPBSBFS(g, 0)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s: dist[%d] = %d, want %d", name, v, got[v], want[v])
				}
			}
		}
	}
}

func TestBFSBaselinesRandomSources(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	g := gen.SampledGrid(40, 40, 0.85, false, 7)
	for trial := 0; trial < 6; trial++ {
		src := uint32(rng.IntN(g.N))
		want := seq.BFS(g, src)
		g1, _ := GBBSBFS(g, src)
		g2, _ := GAPBSBFS(g, src)
		for v := range want {
			if g1[v] != want[v] || g2[v] != want[v] {
				t.Fatalf("src %d vertex %d: gbbs=%d gapbs=%d want=%d",
					src, v, g1[v], g2[v], want[v])
			}
		}
	}
}

// Direction optimization must fire on a dense social graph.
func TestBFSBaselinesBottomUpTriggers(t *testing.T) {
	g := gen.SocialRMAT(12, 16, false, 8)
	_, met := GBBSBFS(g, 0)
	if met.BottomUp == 0 {
		t.Fatal("GBBS BFS never went bottom-up on a social graph")
	}
	_, met = GAPBSBFS(g, 0)
	if met.BottomUp == 0 {
		t.Fatal("GAPBS BFS never went bottom-up on a social graph")
	}
}

// --- SCC baselines ---

func TestGBBSSCCMatchesTarjan(t *testing.T) {
	for name, g := range suite(true) {
		want, wantCount := seq.TarjanSCC(g)
		got, count, _ := GBBSSCC(g)
		if count != wantCount {
			t.Fatalf("%s: count = %d, want %d", name, count, wantCount)
		}
		samePartition(t, name, got, want)
	}
}

func TestMultistepSCCMatchesTarjan(t *testing.T) {
	for name, g := range suite(true) {
		want, wantCount := seq.TarjanSCC(g)
		got, count, _ := MultistepSCC(g)
		if count != wantCount {
			t.Fatalf("%s: count = %d, want %d", name, count, wantCount)
		}
		samePartition(t, name, got, want)
	}
}

func TestSCCBaselinesRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.IntN(250)
		g := gen.ER(n, rng.IntN(4*n+1), true, uint64(700+trial))
		want, wantCount := seq.TarjanSCC(g)
		for _, impl := range []struct {
			name string
			run  func(*graph.Graph) ([]uint32, int, *core.Metrics)
		}{{"gbbs", GBBSSCC}, {"multistep", MultistepSCC}} {
			got, count, _ := impl.run(g)
			if count != wantCount {
				t.Fatalf("trial %d %s: count %d want %d", trial, impl.name, count, wantCount)
			}
			samePartition(t, impl.name, got, want)
		}
	}
}

// --- BCC baselines ---

func bccEquivalent(t *testing.T, name string, g *graph.Graph, got core.BCCResult) {
	t.Helper()
	want := seq.HopcroftTarjanBCC(g)
	if got.NumBCC != want.NumBCC {
		t.Fatalf("%s: NumBCC = %d, want %d", name, got.NumBCC, want.NumBCC)
	}
	fwd := map[uint32]uint32{}
	bwd := map[uint32]uint32{}
	for e := range got.ArcLabel {
		a, b := got.ArcLabel[e], want.ArcLabel[e]
		if (a == graph.None) != (b == graph.None) {
			t.Fatalf("%s: arc %d labeledness differs", name, e)
		}
		if a == graph.None {
			continue
		}
		if x, ok := fwd[a]; ok && x != b {
			t.Fatalf("%s: arc partition mismatch at %d", name, e)
		}
		if y, ok := bwd[b]; ok && y != a {
			t.Fatalf("%s: arc partition mismatch at %d", name, e)
		}
		fwd[a] = b
		bwd[b] = a
	}
	for v := range got.IsArt {
		if got.IsArt[v] != want.IsArtPort[v] {
			t.Fatalf("%s: articulation[%d] = %v, want %v", name, v, got.IsArt[v], want.IsArtPort[v])
		}
	}
}

func TestTarjanVishkinBCC(t *testing.T) {
	for name, g := range suite(false) {
		got, _, auxBytes := TarjanVishkinBCC(g)
		bccEquivalent(t, name, g, got)
		if len(g.Edges) > 0 && auxBytes <= 0 {
			t.Fatalf("%s: aux bytes not reported", name)
		}
	}
}

func TestGBBSBCC(t *testing.T) {
	for name, g := range suite(false) {
		got, met := GBBSBCC(g)
		bccEquivalent(t, name, g, got)
		if name == "chain" && met.Rounds < 1400 {
			t.Fatalf("BFS-tree BCC should take ~n rounds on a chain, got %d", met.Rounds)
		}
	}
}

func TestBCCBaselinesRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.IntN(200)
		g := gen.ER(n, rng.IntN(3*n+1), false, uint64(800+trial))
		tv, _, _ := TarjanVishkinBCC(g)
		bccEquivalent(t, "tv", g, tv)
		gb, _ := GBBSBCC(g)
		bccEquivalent(t, "gbbs", g, gb)
	}
}

// --- SSSP baseline ---

func TestDeltaSteppingMatchesDijkstra(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for name, g := range suite(directed) {
			wg := gen.AddUniformWeights(g, 1, 50, 9)
			want := seq.Dijkstra(wg, 0)
			for _, delta := range []uint64{0, 1, 7, 100} {
				got, _ := DeltaSteppingSSSP(wg, 0, delta)
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("%s delta=%d: dist[%d] = %d, want %d",
							name, delta, v, got[v], want[v])
					}
				}
			}
		}
	}
}

func TestDeltaSteppingEmptyGraph(t *testing.T) {
	g := gen.AddUniformWeights(graph.FromEdges(3, nil, true, graph.BuildOptions{}), 1, 1, 1)
	got, _ := DeltaSteppingSSSP(g, 1, 0)
	if got[1] != 0 || got[0] != core.InfWeight {
		t.Fatalf("empty graph distances wrong: %v", got)
	}
}

func TestGBBSBellmanFordMatchesDijkstra(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for name, g := range suite(directed) {
			wg := gen.AddUniformWeights(g, 1, 500, 10)
			want := seq.Dijkstra(wg, 0)
			got, met := GBBSBellmanFordSSSP(wg, 0)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s: dist[%d] = %d, want %d", name, v, got[v], want[v])
				}
			}
			if name == "chain" && met.Rounds < 1400 {
				t.Fatalf("level-sync BF should take ~n rounds on a chain, got %d", met.Rounds)
			}
		}
	}
}

func TestGBBSBellmanFordEmpty(t *testing.T) {
	g := gen.AddUniformWeights(graph.FromEdges(2, nil, true, graph.BuildOptions{}), 1, 1, 1)
	got, _ := GBBSBellmanFordSSSP(g, 0)
	if got[0] != 0 || got[1] != core.InfWeight {
		t.Fatal("empty BF wrong")
	}
}
