package baseline

import (
	"sync/atomic"

	"pasgal/internal/core"
	"pasgal/internal/graph"
	"pasgal/internal/parallel"
)

// GBBSSCC is a GBBS-style SCC: the same multi-pivot reachability structure
// as PASGAL's (doubling pivot batches, forward/backward min-pivot labels,
// hash-refined subproblems) but with reachability performed by plain
// level-synchronous BFS over flat frontier arrays — one global round per
// hop, no VGC, no hash bags. On large-diameter graphs this pays Θ(D)
// synchronizations per search, which is precisely the behavior Figure 1
// contrasts PASGAL against.
func GBBSSCC(g *graph.Graph) ([]uint32, int, *core.Metrics) {
	// Without a ctx in Options the run cannot be canceled.
	comp, count, met, _ := GBBSSCCOpt(g, core.Options{})
	return comp, count, met
}

// GBBSSCCOpt is GBBSSCC with Options plumbing (ctx, tracer, and metric
// options only).
func GBBSSCCOpt(g *graph.Graph, opt core.Options) ([]uint32, int, *core.Metrics, error) {
	if !g.Directed {
		panic("baseline: GBBSSCC requires a directed graph")
	}
	met := core.NewMetrics(opt, "gbbs-scc")
	cl := core.NewCanceler(opt, met)
	defer cl.Close()
	n := g.N
	comp := make([]uint32, n)
	parallel.Fill(comp, graph.None)
	if n == 0 {
		return comp, 0, met, cl.Poll()
	}
	tr := g.Transpose()
	sub := make([]uint64, n)
	fwd := make([]atomic.Uint32, n)
	bwd := make([]atomic.Uint32, n)
	live := parallel.PackIndex(n, func(int) bool { return true })

	pivotTarget := 1
	seed := uint64(0x1234abcd5678ef90)
	for len(live) > 0 {
		// Phase boundary: a canceled reachability pass leaves labels
		// incomplete, which would settle wrong components.
		if err := cl.Poll(); err != nil {
			return nil, 0, met, err
		}
		met.AddPhase()
		k := pivotTarget
		if k > len(live) {
			k = len(live)
		}
		parallel.SortFunc(live, func(a, b uint32) bool {
			return sccHash(seed, a) < sccHash(seed, b)
		})
		pivots := live[:k]
		parallel.For(len(live), 0, func(i int) {
			fwd[live[i]].Store(graph.None)
			bwd[live[i]].Store(graph.None)
		})
		parallel.For(k, 0, func(i int) {
			fwd[pivots[i]].Store(uint32(i))
			bwd[pivots[i]].Store(uint32(i))
		})
		if err := bfsReach(g, comp, sub, fwd, pivots, met, cl); err != nil {
			return nil, 0, met, err
		}
		if err := bfsReach(tr, comp, sub, bwd, pivots, met, cl); err != nil {
			return nil, 0, met, err
		}
		parallel.For(len(live), 0, func(i int) {
			v := live[i]
			fl, bl := fwd[v].Load(), bwd[v].Load()
			if fl != graph.None && fl == bl {
				comp[v] = pivots[fl]
			}
		})
		parallel.For(len(live), 0, func(i int) {
			v := live[i]
			if comp[v] == graph.None {
				sub[v] = sccRefine(sub[v], fwd[v].Load(), bwd[v].Load())
			}
		})
		live = parallel.Pack(live, func(i int) bool { return comp[live[i]] == graph.None })
		pivotTarget *= 2
		seed = seed*0x2545f4914f6cdd1d + 7
	}
	// Final check before counting; the last phase may have been drained.
	if err := cl.Poll(); err != nil {
		return nil, 0, met, err
	}
	count := parallel.Count(n, func(v int) bool { return comp[v] == uint32(v) })
	return comp, count, met, nil
}

// bfsReach propagates minimum pivot indices level-synchronously.
func bfsReach(g *graph.Graph, comp []uint32, sub []uint64,
	label []atomic.Uint32, pivots []uint32, met *core.Metrics,
	cl *core.Canceler) error {

	frontier := append([]uint32(nil), pivots...)
	for len(frontier) > 0 {
		if err := cl.Poll(); err != nil {
			return err
		}
		met.Round(len(frontier))
		offs := make([]int64, len(frontier))
		parallel.For(len(frontier), 0, func(i int) {
			offs[i] = int64(g.Degree(frontier[i]))
		})
		total := parallel.Scan(offs)
		met.AddEdges(total)
		outv := make([]uint32, total)
		parallel.ForCancel(cl.Token(), len(frontier), 1, func(i int) {
			u := frontier[i]
			lu := label[u].Load()
			su := sub[u]
			at := offs[i]
			for _, w := range g.Neighbors(u) {
				outv[at] = graph.None
				if comp[w] == graph.None && sub[w] == su {
					for {
						old := label[w].Load()
						if lu >= old {
							break
						}
						if label[w].CompareAndSwap(old, lu) {
							outv[at] = w
							break
						}
					}
				}
				at++
			}
		})
		frontier = parallel.Pack(outv, func(i int) bool { return outv[i] != graph.None })
	}
	// The caller reads the labels right after this returns.
	return cl.Poll()
}

func sccHash(seed uint64, v uint32) uint64 {
	x := seed ^ (uint64(v)+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9
	x ^= x >> 31
	x *= 0x94d049bb133111eb
	return x ^ (x >> 29)
}

func sccRefine(old uint64, fl, bl uint32) uint64 {
	x := old ^ 0x9e3779b97f4a7c15
	x = (x + uint64(fl) + 1) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 30) ^ uint64(bl)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
