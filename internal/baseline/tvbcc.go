package baseline

import (
	"sync/atomic"

	"pasgal/internal/conn"
	"pasgal/internal/core"
	"pasgal/internal/euler"
	"pasgal/internal/graph"
	"pasgal/internal/parallel"
	"pasgal/internal/rmq"
)

// TarjanVishkinBCC is the classic Tarjan–Vishkin biconnectivity algorithm:
// spanning forest, Euler-tour preorder and low/high, then an *explicitly
// materialized* auxiliary graph whose nodes are the tree edges and whose
// edges encode the two TV conditions; connected components of the auxiliary
// graph are the BCCs.
//
// The auxiliary graph costs Θ(m) space on top of the input — the reason the
// paper reports Tarjan–Vishkin going out-of-memory on billion-edge graphs
// while FAST-BCC (O(n) auxiliary space) survives. AuxBytes in the returned
// metrics-side value reports the materialized size so the benchmark harness
// can chart the space blow-up.
func TarjanVishkinBCC(g *graph.Graph) (core.BCCResult, *core.Metrics, int64) {
	// Without a ctx in Options the run cannot be canceled.
	res, met, auxBytes, _ := TarjanVishkinBCCOpt(g, core.Options{})
	return res, met, auxBytes
}

// TarjanVishkinBCCOpt is TarjanVishkinBCC with Options plumbing (ctx,
// tracer, and metric options only).
func TarjanVishkinBCCOpt(g *graph.Graph, opt core.Options) (core.BCCResult, *core.Metrics, int64, error) {
	if g.Directed {
		panic("baseline: TarjanVishkinBCC requires an undirected graph")
	}
	met := core.NewMetrics(opt, "tv-bcc")
	cl := core.NewCanceler(opt, met)
	defer cl.Close()
	n := g.N
	res := core.BCCResult{
		ArcLabel: make([]uint32, len(g.Edges)),
		IsArt:    make([]bool, n),
	}
	parallel.Fill(res.ArcLabel, graph.None)
	if n == 0 {
		return res, met, 0, cl.Poll()
	}
	tree, _, _ := conn.SpanningForest(g)
	f := euler.Build(n, tree)

	isTree := func(u, w uint32) bool {
		return f.Parent[u] == w || f.Parent[w] == u
	}

	// Phase boundary before the edge-linear low/high sweep.
	if err := cl.Poll(); err != nil {
		return core.BCCResult{}, met, 0, err
	}

	// Per-vertex local low/high in preorder position (same definitions as
	// FAST-BCC).
	localLow := make([]uint32, n)
	localHigh := make([]uint32, n)
	parallel.ForCancel(cl.Token(), n, 64, func(ui int) {
		u := uint32(ui)
		lo, hi := f.Pre[u], f.Pre[u]
		for e := g.Offsets[u]; e < g.Offsets[u+1]; e++ {
			w := g.Edges[e]
			if isTree(u, w) {
				continue
			}
			if pw := f.Pre[w]; pw < lo {
				lo = pw
			} else if pw > hi {
				hi = pw
			}
		}
		localLow[f.Pre[u]] = lo
		localHigh[f.Pre[u]] = hi
	})
	// A canceled drain above leaves localLow/localHigh zeroed; the RMQ
	// tables must not be built from them.
	if err := cl.Poll(); err != nil {
		return core.BCCResult{}, met, 0, err
	}
	lowR := rmq.NewMin(localLow)
	highR := rmq.NewMax(localHigh)
	met.AddEdges(int64(len(g.Edges)))

	// Materialize the auxiliary edge list. Aux node of tree edge
	// (p(v), v) = v. TV conditions:
	//  (i)  non-tree {u,w}, u and w unrelated            -> aux (u, w)
	//  (ii) tree (v, p(v)), p(v) != root, subtree(v)
	//       escapes subtree(p(v))                        -> aux (v, p(v))
	auxCap := len(g.Edges)/2 + n
	aux := make([]graph.Edge, 0, auxCap)
	const tvPollStride = 1 << 16 // sequential loops: poll every 64Ki vertices
	for u := uint32(0); u < uint32(n); u++ {
		if u%tvPollStride == 0 {
			if err := cl.Poll(); err != nil {
				return core.BCCResult{}, met, 0, err
			}
		}
		for e := g.Offsets[u]; e < g.Offsets[u+1]; e++ {
			w := g.Edges[e]
			if w <= u || isTree(u, w) {
				continue
			}
			if !f.IsAncestor(u, w) && !f.IsAncestor(w, u) {
				aux = append(aux, graph.Edge{U: u, V: w})
			}
		}
	}
	for v := uint32(0); v < uint32(n); v++ {
		if v%tvPollStride == 0 {
			if err := cl.Poll(); err != nil {
				return core.BCCResult{}, met, 0, err
			}
		}
		p := f.Parent[v]
		if p == graph.None {
			continue
		}
		low := lowR.Query(int(f.First(v)), int(f.Last(v)))
		high := highR.Query(int(f.First(v)), int(f.Last(v)))
		if low < f.First(p) || high > f.Last(p) {
			aux = append(aux, graph.Edge{U: v, V: p})
		}
	}
	// The Θ(m) space bill: the aux edge list plus its CSR form.
	auxGraph := graph.FromEdges(n, aux, false, graph.BuildOptions{})
	auxBytes := int64(len(aux))*12 + int64(len(auxGraph.Edges))*4 + int64(n+1)*8

	labels, _ := conn.Components(auxGraph)

	// Final phase boundary before labeling writes into res.
	if err := cl.Poll(); err != nil {
		return core.BCCResult{}, met, 0, err
	}

	// Arc labels and articulation points, as in FAST-BCC.
	parallel.For(n, 64, func(ui int) {
		u := uint32(ui)
		for e := g.Offsets[u]; e < g.Offsets[u+1]; e++ {
			w := g.Edges[e]
			switch {
			case f.Parent[w] == u:
				res.ArcLabel[e] = labels[w]
			case f.Parent[u] == w:
				res.ArcLabel[e] = labels[u]
			case f.IsAncestor(u, w):
				res.ArcLabel[e] = labels[w]
			default:
				res.ArcLabel[e] = labels[u]
			}
		}
	})
	compactBCCLabels(g, &res)
	return res, met, auxBytes, nil
}

// compactBCCLabels renumbers arc labels to [0, NumBCC) and fills IsArt.
func compactBCCLabels(g *graph.Graph, res *core.BCCResult) {
	n := g.N
	usedA := make([]atomic.Uint32, n)
	parallel.ForRange(len(res.ArcLabel), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if l := res.ArcLabel[i]; l != graph.None {
				usedA[l].Store(1)
			}
		}
	})
	used := make([]uint32, n)
	parallel.For(n, 0, func(i int) { used[i] = usedA[i].Load() })
	total := parallel.Scan(used)
	res.NumBCC = int(total)
	parallel.ForRange(len(res.ArcLabel), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if res.ArcLabel[i] != graph.None {
				res.ArcLabel[i] = used[res.ArcLabel[i]]
			}
		}
	})
	parallel.For(n, 64, func(vi int) {
		v := uint32(vi)
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		if hi-lo < 2 {
			return
		}
		first := res.ArcLabel[lo]
		for e := lo + 1; e < hi; e++ {
			if res.ArcLabel[e] != first {
				res.IsArt[v] = true
				return
			}
		}
	})
}
