package parallel

import "sort"

// SortFunc sorts s with a parallel merge sort: the slice is cut into runs
// that are sorted independently (stdlib pdqsort) and then merged pairwise,
// with each merge itself split in two around a binary-searched pivot.
// less must be a strict weak ordering.
func SortFunc[T any](s []T, less func(a, b T) bool) {
	n := len(s)
	p := Workers()
	if n < 1<<12 || p == 1 {
		sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
		return
	}
	runs := 1
	for runs < 4*p {
		runs *= 2
	}
	runLen := (n + runs - 1) / runs
	For(runs, 1, func(r int) {
		lo := r * runLen
		if lo >= n {
			return
		}
		hi := lo + runLen
		if hi > n {
			hi = n
		}
		part := s[lo:hi]
		sort.Slice(part, func(i, j int) bool { return less(part[i], part[j]) })
	})
	buf := make([]T, n)
	src, dst := s, buf
	for width := runLen; width < n; width *= 2 {
		nPairs := (n + 2*width - 1) / (2 * width)
		For(nPairs, 1, func(pr int) {
			lo := pr * 2 * width
			mid := lo + width
			hi := lo + 2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			mergeInto(dst[lo:hi], src[lo:mid], src[mid:hi], less)
		})
		src, dst = dst, src
	}
	if &src[0] != &s[0] {
		Copy(s, src)
	}
}

func mergeInto[T any](out, a, b []T, less func(x, y T) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}

// SortUint64 sorts keys ascending with a parallel LSD radix sort (8-bit
// digits, per-chunk histograms combined with a scan). It is the integer-sort
// primitive used to group arcs when building Euler tours.
func SortUint64(keys []uint64) {
	n := len(keys)
	if n < 1<<12 {
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		return
	}
	// Skip digit passes above the maximum key.
	var maxKey uint64
	maxKey = Reduce(n, 0, 0, func(i int) uint64 { return keys[i] },
		func(a, b uint64) uint64 {
			if b > a {
				return b
			}
			return a
		})
	buf := make([]uint64, n)
	src, dst := keys, buf
	p := Workers()
	grain := defaultGrain(n, p)
	chunks := (n + grain - 1) / grain
	hist := make([]int, chunks*256)
	for shift := 0; shift < 64; shift += 8 {
		if shift > 0 && maxKey>>uint(shift) == 0 {
			break
		}
		for i := range hist {
			hist[i] = 0
		}
		ForRange(n, grain, func(lo, hi int) {
			h := hist[(lo/grain)*256 : (lo/grain)*256+256]
			for i := lo; i < hi; i++ {
				h[(src[i]>>uint(shift))&0xff]++
			}
		})
		// Column-major scan so equal digits keep chunk order (stability).
		total := 0
		for d := 0; d < 256; d++ {
			for c := 0; c < chunks; c++ {
				v := hist[c*256+d]
				hist[c*256+d] = total
				total += v
			}
		}
		ForRange(n, grain, func(lo, hi int) {
			h := hist[(lo/grain)*256 : (lo/grain)*256+256]
			for i := lo; i < hi; i++ {
				d := (src[i] >> uint(shift)) & 0xff
				dst[h[d]] = src[i]
				h[d]++
			}
		})
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		Copy(keys, src)
	}
}
