package parallel

// Histogram counts occurrences of each key in [0, k). Keys outside the
// range panic. Per-chunk local histograms are merged, so the work is
// O(n + k·chunks) with no atomics on the hot path.
func Histogram(keys []uint32, k int) []int64 {
	n := len(keys)
	out := make([]int64, k)
	if n == 0 {
		return out
	}
	p := Workers()
	grain := defaultGrain(n, p)
	chunks := (n + grain - 1) / grain
	if chunks <= 1 || k > 1<<16 {
		// For huge key ranges, per-chunk copies would dominate; fall back
		// to a sequential count.
		for _, key := range keys {
			out[key]++
		}
		return out
	}
	local := make([]int64, chunks*k)
	ForRange(n, grain, func(lo, hi int) {
		h := local[(lo/grain)*k : (lo/grain)*k+k]
		for i := lo; i < hi; i++ {
			h[keys[i]]++
		}
	})
	For(k, 0, func(key int) {
		var sum int64
		for c := 0; c < chunks; c++ {
			sum += local[c*k+key]
		}
		out[key] = sum
	})
	return out
}

// CountingSortByKey stably sorts the indices [0, n) of keys (values in
// [0, k)) by key. It returns the permutation (positions grouped by key,
// original order preserved within a key) and the k+1 group offsets — the
// "semisort" primitive used to group edges by endpoint.
func CountingSortByKey(keys []uint32, k int) (perm []uint32, offsets []int64) {
	n := len(keys)
	perm = make([]uint32, n)
	offsets = make([]int64, k+1)
	if n == 0 {
		return perm, offsets
	}
	p := Workers()
	grain := defaultGrain(n, p)
	chunks := (n + grain - 1) / grain
	if chunks <= 1 || k > 1<<16 {
		counts := make([]int64, k+1)
		for _, key := range keys {
			counts[key+1]++
		}
		for i := 0; i < k; i++ {
			counts[i+1] += counts[i]
		}
		copy(offsets, counts)
		cursor := make([]int64, k)
		copy(cursor, counts[:k])
		for i, key := range keys {
			perm[cursor[key]] = uint32(i)
			cursor[key]++
		}
		return perm, offsets
	}
	// Column-major scan over per-chunk histograms keeps the sort stable.
	local := make([]int64, chunks*k)
	ForRange(n, grain, func(lo, hi int) {
		h := local[(lo/grain)*k : (lo/grain)*k+k]
		for i := lo; i < hi; i++ {
			h[keys[i]]++
		}
	})
	var total int64
	for key := 0; key < k; key++ {
		offsets[key] = total
		for c := 0; c < chunks; c++ {
			v := local[c*k+key]
			local[c*k+key] = total
			total += v
		}
	}
	offsets[k] = total
	ForRange(n, grain, func(lo, hi int) {
		h := local[(lo/grain)*k : (lo/grain)*k+k]
		for i := lo; i < hi; i++ {
			key := keys[i]
			perm[h[key]] = uint32(i)
			h[key]++
		}
	})
	return perm, offsets
}

// RandomPermutation returns a deterministic pseudo-random permutation of
// [0, n): indices sorted by a hash of (seed, i). Ties are impossible for
// distinct i because the comparison falls back to the index.
func RandomPermutation(n int, seed uint64) []uint32 {
	perm := Tabulate(n, func(i int) uint32 { return uint32(i) })
	SortFunc(perm, func(a, b uint32) bool {
		ha := permHash(seed, a)
		hb := permHash(seed, b)
		if ha != hb {
			return ha < hb
		}
		return a < b
	})
	return perm
}

func permHash(seed uint64, v uint32) uint64 {
	x := seed + uint64(v)*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
