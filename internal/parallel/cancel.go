package parallel

import (
	"sync"
	"sync/atomic"
)

// Cancel is a cooperative cancellation token for parallel loops: an atomic
// flag plus the first recorded cause. A loop launched with ForRangeCancel
// or ForCancel polls the token at every chunk-claim boundary, so once the
// token fires the loop drains its remaining chunks without running the body
// — at most the chunks already in flight (O(grain) work each) still
// execute — and the launch returns through the normal join with no leaked
// goroutines: pool workers simply find no further claimable work and go
// back to scanning the board.
//
// The nil *Cancel is a valid token that never fires; every method is
// nil-safe, so "no cancellation" costs one pointer test per poll and the
// non-cancellable entry points simply pass nil. Cancellation is sticky:
// once fired a token stays fired, and the first non-nil cause wins.
//
// Cancel carries no deadline machinery of its own — callers translate
// context.Context (or any other signal) into one Cancel call; see
// internal/core's Canceler for the context binding used by the algorithm
// drivers.
type Cancel struct {
	fired atomic.Bool
	mu    sync.Mutex
	cause error
}

// NewCancel returns a fresh, unfired token.
func NewCancel() *Cancel { return &Cancel{} }

// Fire cancels the token. The first call's cause is kept (nil is a valid
// cause meaning "canceled without explanation"); later calls are no-ops.
// Safe to call from any goroutine, multiple times, and on a nil receiver.
func (c *Cancel) Fire(cause error) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if !c.fired.Load() {
		c.cause = cause
		// The store is inside the lock so Cause never observes the flag
		// set with the cause still unwritten.
		c.fired.Store(true)
	}
	c.mu.Unlock()
}

// Canceled reports whether the token has fired. One atomic load — this is
// the poll the scheduler issues per chunk claim, and the reason the token
// is a flag rather than a channel.
func (c *Cancel) Canceled() bool { return c != nil && c.fired.Load() }

// Cause returns the cause recorded by the winning Fire call, or nil while
// the token has not fired (or fired with a nil cause).
func (c *Cancel) Cause() error {
	if c == nil || !c.fired.Load() {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cause
}

// ForRangeCancel is ForRange with a cancellation token: body runs over
// grain-aligned chunks of [0,n) until every chunk is done or c fires.
// After c fires, chunks not yet started are drained without running the
// body (in-flight chunks complete), and the call returns normally — the
// caller is expected to notice the cancellation itself (c.Canceled());
// a partially-executed loop makes no completeness promise. c == nil is
// exactly ForRange.
func ForRangeCancel(c *Cancel, n, grain int, body func(lo, hi int)) {
	forRange(c, n, grain, body)
}

// ForCancel is For with a cancellation token; see ForRangeCancel for the
// drain semantics.
func ForCancel(c *Cancel, n, grain int, body func(i int)) {
	ForRangeCancel(c, n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}
