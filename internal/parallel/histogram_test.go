package parallel

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestHistogram(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, n := range []int{0, 1, 100, 100000} {
		k := 64
		keys := make([]uint32, n)
		want := make([]int64, k)
		for i := range keys {
			keys[i] = rng.Uint32N(uint32(k))
			want[keys[i]]++
		}
		got := Histogram(keys, k)
		for key := 0; key < k; key++ {
			if got[key] != want[key] {
				t.Fatalf("n=%d: hist[%d] = %d, want %d", n, key, got[key], want[key])
			}
		}
	}
}

func TestHistogramLargeKeyRange(t *testing.T) {
	// k > 2^16 takes the sequential fallback.
	keys := []uint32{0, 99999, 99999, 5}
	got := Histogram(keys, 100000)
	if got[99999] != 2 || got[0] != 1 || got[5] != 1 {
		t.Fatal("large-range histogram wrong")
	}
}

func TestCountingSortByKey(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, n := range []int{0, 1, 50, 77777} {
		k := 32
		keys := make([]uint32, n)
		for i := range keys {
			keys[i] = rng.Uint32N(uint32(k))
		}
		perm, offsets := CountingSortByKey(keys, k)
		if len(perm) != n || offsets[k] != int64(n) {
			t.Fatalf("n=%d: shape wrong", n)
		}
		// Grouped by key, stable within groups, and a real permutation.
		seen := make([]bool, n)
		for key := 0; key < k; key++ {
			prev := int64(-1)
			for at := offsets[key]; at < offsets[key+1]; at++ {
				i := perm[at]
				if seen[i] {
					t.Fatalf("duplicate index %d", i)
				}
				seen[i] = true
				if keys[i] != uint32(key) {
					t.Fatalf("index %d with key %d in group %d", i, keys[i], key)
				}
				if int64(i) <= prev {
					t.Fatalf("instability in group %d", key)
				}
				prev = int64(i)
			}
		}
		for i := 0; i < n; i++ {
			if !seen[i] {
				t.Fatalf("index %d missing", i)
			}
		}
	}
}

func TestCountingSortQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		keys := make([]uint32, len(raw))
		for i, r := range raw {
			keys[i] = uint32(r) % 16
		}
		perm, offsets := CountingSortByKey(keys, 16)
		if offsets[16] != int64(len(keys)) {
			return false
		}
		for key := 0; key < 16; key++ {
			for at := offsets[key]; at < offsets[key+1]; at++ {
				if keys[perm[at]] != uint32(key) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomPermutation(t *testing.T) {
	for _, n := range []int{0, 1, 2, 1000, 50000} {
		perm := RandomPermutation(n, 42)
		seen := make([]bool, n)
		for _, v := range perm {
			if int(v) >= n || seen[v] {
				t.Fatalf("n=%d: not a permutation", n)
			}
			seen[v] = true
		}
		// Deterministic.
		again := RandomPermutation(n, 42)
		for i := range perm {
			if perm[i] != again[i] {
				t.Fatal("not deterministic")
			}
		}
	}
	// Different seeds give different permutations (overwhelmingly).
	a := RandomPermutation(1000, 1)
	b := RandomPermutation(1000, 2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("seeds too correlated: %d fixed points", same)
	}
	// Identity is vanishingly unlikely: check it actually shuffles.
	fixed := 0
	for i, v := range a {
		if int(v) == i {
			fixed++
		}
	}
	if fixed > 100 {
		t.Fatalf("barely shuffled: %d fixed points", fixed)
	}
}
