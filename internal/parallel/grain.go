package parallel

// defaultGrain picks the chunk size for a loop whose caller didn't specify
// one. The target is n/(8p): eight chunks per worker, enough slack for work
// stealing to balance skewed bodies without paying per-iteration scheduling.
//
// The grain is clamped from above so the chunk count never collapses: a
// fixed 4096 cap (the previous design) leaves mid-size loops on high core
// counts with fewer than one chunk per worker. Instead the cap is
// max(4096, ceil(n/(64p))) — 4096 iterations is still the largest grain a
// small loop is allowed, but once n grows past 4096·64·p the cap scales so
// every worker still sees at least 8 and at most 64 chunks. The lower bound
// of 64 chunks/worker also bounds the per-chunk bookkeeping arrays that
// Scan/Pack/Histogram allocate (indexed by lo/grain) to O(p), independent
// of n.
func defaultGrain(n, p int) int {
	if p < 1 {
		p = 1
	}
	g := n / (8 * p)
	limit := 4096
	if c := (n + 64*p - 1) / (64 * p); c > limit {
		limit = c
	}
	if g > limit {
		g = limit
	}
	if g < 1 {
		g = 1
	}
	return g
}
