// Package parallel implements the fork-join runtime that underpins every
// algorithm in this library. It plays the role ParlayLib plays for the C++
// PASGAL: nested fork-join via Do, dynamically scheduled parallel loops via
// For/ForRange, and the usual work-efficient primitives (reduce, scan, pack,
// sort) built on top of them.
//
// # Scheduling
//
// The runtime is a persistent work-stealing scheduler. A pool of worker
// goroutines is started lazily on the first multi-worker launch and resized
// by SetWorkers; idle workers park on a condition variable (one futex wait
// in steady state) and are signalled when new work appears, so an idle pool
// costs nothing and a loop launch costs no goroutine spawns.
//
// A loop launch splits its iteration space into grain-aligned chunks and
// pre-splits the chunk range into one contiguous sub-range per participant
// (the caller plus up to min(workers, chunks)-1 helpers). Each participant
// claims one chunk at a time off the front of its own range with a CAS;
// when its range is empty it steals the back half of a victim's remaining
// range (lazy binary splitting) and continues. The caller always
// participates, so a launch whose helpers never arrive — the small-frontier
// regime of large-diameter graphs — degenerates to a near-serial loop with
// one CAS per chunk and no synchronization beyond the final join.
//
// Do is a real fork: the additional arms are published for stealing, the
// first arm runs inline on the caller, and at the join the caller steals
// unclaimed arms back and runs them itself, blocking only on arms another
// worker is actively executing. Do arms and loop bodies must not
// synchronize with each other (no channel hand-offs between two arms of
// the same Do): a blocked arm can block the worker executing it, and the
// scheduler guarantees progress only for tasks that run to completion on
// their own.
//
// Loops that fit in a single chunk run inline on the caller with no
// scheduling at all. Panics in loop bodies and Do arms are caught, the join
// completes, and the first panic value is re-raised exactly once from the
// launching call.
//
// Scheduling volume (launches, steals, parks, wakes) is observable through
// SchedStats and mirrored into an optional trace.Tracer; "parallelism comes
// at a cost" is an explicit object of study in this library, and the
// counters are how that cost is measured. See docs/SCHEDULER.md for the
// stealing protocol and the memory-ordering argument.
package parallel

import (
	"runtime"
	"sync/atomic"

	"pasgal/internal/trace"
)

// workers holds the current worker-team size. It defaults to GOMAXPROCS and
// can be overridden (e.g. by the scaling experiments in Figure 1).
var workers atomic.Int32

func init() {
	workers.Store(int32(runtime.GOMAXPROCS(0)))
}

// Workers returns the number of workers parallel loops will use.
func Workers() int { return int(workers.Load()) }

// SetWorkers overrides the worker-team size. p < 1 resets to GOMAXPROCS.
// It returns the previous value. If the worker pool is already running it
// is resized: a fresh generation of p workers is started and the old
// generation retires as soon as each worker finishes the task it is
// executing. In-flight loops keep their already-split chunk ranges and
// complete on the callers and surviving claimants, so resizing never drops
// or duplicates a chunk.
func SetWorkers(p int) int {
	if p < 1 {
		p = runtime.GOMAXPROCS(0)
	}
	prev := int(workers.Swap(int32(p)))
	sched.resize(p)
	return prev
}

// tracer, when set, mirrors the scheduling counters into a trace.Tracer.
// The runtime is package-global (loops launch from anywhere), so the hook
// is too; one atomic pointer load per event is the entire overhead, and a
// nil load simply makes every tracer method a no-op.
var tracer atomic.Pointer[trace.Tracer]

// SetTracer installs (or, with nil, removes) the tracer that receives
// loop/fork/steal/park counts. It returns the previously installed tracer.
func SetTracer(t *trace.Tracer) *trace.Tracer {
	return tracer.Swap(t)
}

// ForRange runs body over [0,n) split into half-open grain-aligned chunks
// [lo,hi): every call receives exactly [c*grain, min((c+1)*grain, n)) for
// one chunk index c, so callers may index per-chunk state with lo/grain.
// grain <= 0 selects an automatic chunk size. Chunks are distributed
// dynamically by work stealing. Panics in the body are propagated to the
// caller after all outstanding chunks finish.
func ForRange(n, grain int, body func(lo, hi int)) {
	forRange(nil, n, grain, body)
}

// forRange is the shared launch path behind ForRange and ForRangeCancel.
// c may be nil (never cancels). Cancellation is polled per chunk claim in
// runLoop; here it only short-circuits the inline path and the launch of a
// loop whose token has already fired.
func forRange(c *Cancel, n, grain int, body func(lo, hi int)) {
	if n <= 0 || c.Canceled() {
		return
	}
	p := Workers()
	if grain <= 0 {
		grain = defaultGrain(n, p)
	}
	chunks := (n + grain - 1) / grain
	if chunks <= 1 {
		statInline.Add(1)
		tracer.Load().LoopInline()
		body(0, n)
		return
	}
	if chunks > maxChunks {
		panic("parallel: loop splits into more than 2^32-1 chunks; use a larger grain")
	}
	k := p
	if k > chunks {
		k = chunks
	}
	statLoops.Add(1)
	statForks.Add(int64(k - 1))
	tracer.Load().Loop(int64(k-1), int64(chunks))

	j := &job{body: body, grain: grain, n: n, cancel: c, done: make(chan struct{})}
	j.pending.Store(int64(chunks))
	j.slots = make([]slot, k)
	per, rem := chunks/k, chunks%k
	lo := 0
	for i := 0; i < k; i++ {
		hi := lo + per
		if i < rem {
			hi++
		}
		j.slots[i].bounds.Store(pack(lo, hi))
		lo = hi
	}

	if k == 1 {
		// One participant: the caller drains every chunk itself; nothing to
		// publish and nobody to wake.
		j.runLoop(0)
	} else {
		sched.ensure()
		s, ok := sched.publish(j)
		j.runLoop(0)
		if ok {
			sched.unpublish(s, j)
			if j.pending.Load() > 0 {
				<-j.done
			}
		}
	}
	if j.panicked.Load() {
		panic(j.panicVal)
	}
}

// For runs body(i) for every i in [0,n) in parallel. grain <= 0 selects an
// automatic chunk size.
func For(n, grain int, body func(i int)) {
	ForRange(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// Do runs the given functions as parallel fork-join tasks and waits for all
// of them. With two arguments it is the classic binary fork: the second arm
// is published for stealing, the first runs inline on the caller, and at
// the join any arm no worker has claimed is stolen back and run inline.
// The first panic value raised by any arm is re-raised exactly once after
// every arm has finished.
func Do(fns ...func()) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0]()
		return
	}
	statLoops.Add(1)
	statForks.Add(int64(len(fns) - 1))
	tracer.Load().Loop(int64(len(fns)-1), int64(len(fns)))

	j := &job{arms: make([]forkArm, len(fns)-1), done: make(chan struct{})}
	for i := range j.arms {
		j.arms[i].fn = fns[i+1]
	}
	j.pending.Store(int64(len(fns) - 1))

	sched.ensure()
	s, ok := sched.publish(j)
	j.exec1(fns[0])
	// Join: steal back every arm no worker has claimed, newest first, and
	// run it inline.
	for i := len(j.arms) - 1; i >= 0; i-- {
		a := &j.arms[i]
		if a.state.CompareAndSwap(armPending, armClaimed) {
			j.runArm(a)
		}
	}
	if ok {
		sched.unpublish(s, j)
	}
	if j.pending.Load() > 0 {
		<-j.done
	}
	if j.panicked.Load() {
		panic(j.panicVal)
	}
}
