// Package parallel implements the fork-join runtime that underpins every
// algorithm in this library. It plays the role ParlayLib plays for the C++
// PASGAL: nested fork-join via Do, dynamically scheduled parallel loops via
// For/ForRange, and the usual work-efficient primitives (reduce, scan, pack,
// sort) built on top of them.
//
// The scheduler is deliberately simple: a loop is split into chunks of
// `grain` iterations and a small team of goroutines pulls chunks off a
// shared atomic counter. This gives dynamic load balancing without a full
// work-stealing deque, which is sufficient because PASGAL-style algorithms
// control granularity themselves (that is the whole point of vertical
// granularity control).
//
// Note that chunked loops spawn goroutines even when only one worker is
// configured: synchronization overhead is an explicit object of study in
// this library ("parallelism comes at a cost"), so the runtime does not
// silently elide it. Loops that fit in a single chunk run inline.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"pasgal/internal/trace"
)

// workers holds the current worker-team size. It defaults to GOMAXPROCS and
// can be overridden (e.g. by the scaling experiments in Figure 1).
var workers atomic.Int32

func init() {
	workers.Store(int32(runtime.GOMAXPROCS(0)))
}

// Workers returns the number of workers parallel loops will use.
func Workers() int { return int(workers.Load()) }

// SetWorkers overrides the worker-team size. p < 1 resets to GOMAXPROCS.
// It returns the previous value.
func SetWorkers(p int) int {
	if p < 1 {
		p = runtime.GOMAXPROCS(0)
	}
	return int(workers.Swap(int32(p)))
}

// stats counts scheduling events; the benchmark harness reads these to
// report machine-independent "synchronization cost" figures.
var (
	statForks atomic.Int64 // goroutines spawned by the runtime
	statLoops atomic.Int64 // parallel loop launches (each is one join barrier)
)

// SchedStats reports cumulative (loopLaunches, goroutinesSpawned) since
// process start or the last ResetSchedStats.
func SchedStats() (loops, forks int64) {
	return statLoops.Load(), statForks.Load()
}

// ResetSchedStats zeroes the scheduling counters.
func ResetSchedStats() {
	statForks.Store(0)
	statLoops.Store(0)
}

// tracer, when set, mirrors the scheduling counters into a trace.Tracer.
// The runtime is package-global (loops launch from anywhere), so the hook
// is too; one atomic pointer load per loop launch is the entire overhead,
// and a nil load simply makes every tracer method a no-op.
var tracer atomic.Pointer[trace.Tracer]

// SetTracer installs (or, with nil, removes) the tracer that receives
// loop/fork counts. It returns the previously installed tracer.
func SetTracer(t *trace.Tracer) *trace.Tracer {
	return tracer.Swap(t)
}

// defaultGrain picks a chunk size that yields ~8 chunks per worker, clamped
// to [1, 4096]. Eight chunks per worker gives the dynamic scheduler room to
// balance load without drowning in scheduling overhead.
func defaultGrain(n, p int) int {
	g := n / (8 * p)
	if g < 1 {
		g = 1
	}
	if g > 4096 {
		g = 4096
	}
	return g
}

// ForRange runs body over [0,n) split into half-open chunks [lo,hi).
// grain <= 0 selects an automatic chunk size. Chunks are distributed
// dynamically. Panics in the body are propagated to the caller.
func ForRange(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := Workers()
	if grain <= 0 {
		grain = defaultGrain(n, p)
	}
	chunks := (n + grain - 1) / grain
	if chunks <= 1 {
		tracer.Load().LoopInline()
		body(0, n)
		return
	}
	nw := p
	if nw > chunks {
		nw = chunks
	}
	statLoops.Add(1)
	statForks.Add(int64(nw))
	tracer.Load().Loop(int64(nw), int64(chunks))

	var next atomic.Int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	wg.Add(nw)
	for w := 0; w < nw; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					// Exactly one writer wins via sync.Once, and the read
					// below happens after wg.Wait.
					panicOnce.Do(func() { panicVal = r }) //pasgal:vet ignore=parallel-capture -- single Once-guarded write, read after join
				}
			}()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// For runs body(i) for every i in [0,n) in parallel. grain <= 0 selects an
// automatic chunk size.
func For(n, grain int, body func(i int)) {
	ForRange(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// Do runs the given functions as parallel fork-join tasks and waits for all
// of them. With two arguments it is the classic binary fork.
func Do(fns ...func()) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0]()
		return
	}
	statLoops.Add(1)
	statForks.Add(int64(len(fns) - 1))
	tracer.Load().Loop(int64(len(fns)-1), int64(len(fns)))
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	wg.Add(len(fns) - 1)
	for _, fn := range fns[1:] {
		fn := fn
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					// Exactly one writer wins via sync.Once, and the read
					// below happens after wg.Wait.
					panicOnce.Do(func() { panicVal = r }) //pasgal:vet ignore=parallel-capture -- single Once-guarded write, read after join
				}
			}()
			fn()
		}()
	}
	fns[0]()
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}
