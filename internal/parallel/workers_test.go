package parallel

import (
	"math/rand/v2"
	"testing"
)

// withWorkers runs f with the worker count forced to p (goroutines still
// multiplex onto however many cores exist; the point is exercising the
// parallel code paths that a 1-core default would short-circuit).
func withWorkers(t *testing.T, p int, f func()) {
	t.Helper()
	old := SetWorkers(p)
	defer SetWorkers(old)
	f()
}

func TestSortFuncParallelPath(t *testing.T) {
	withWorkers(t, 8, func() {
		rng := rand.New(rand.NewPCG(1, 1))
		for _, n := range []int{1 << 12, 1<<14 + 3, 1 << 15} {
			s := make([]uint64, n)
			for i := range s {
				s[i] = rng.Uint64N(10000)
			}
			SortFunc(s, func(a, b uint64) bool { return a < b })
			for i := 1; i < n; i++ {
				if s[i-1] > s[i] {
					t.Fatalf("n=%d: not sorted at %d", n, i)
				}
			}
		}
		// Stability is not promised, but sortedness with all-equal keys
		// exercises the merge fully.
		eq := make([]uint64, 1<<13)
		SortFunc(eq, func(a, b uint64) bool { return a < b })
	})
}

func TestSortUint64ParallelPath(t *testing.T) {
	withWorkers(t, 8, func() {
		rng := rand.New(rand.NewPCG(2, 2))
		s := make([]uint64, 1<<15)
		for i := range s {
			s[i] = rng.Uint64()
		}
		SortUint64(s)
		for i := 1; i < len(s); i++ {
			if s[i-1] > s[i] {
				t.Fatalf("not sorted at %d", i)
			}
		}
	})
}

func TestScanPackParallelPath(t *testing.T) {
	withWorkers(t, 8, func() {
		n := 1 << 16
		src := make([]int64, n)
		for i := range src {
			src[i] = int64(i % 7)
		}
		want := make([]int64, n)
		var acc int64
		for i := range src {
			want[i] = acc
			acc += src[i]
		}
		if total := Scan(src); total != acc {
			t.Fatalf("total %d want %d", total, acc)
		}
		for i := range src {
			if src[i] != want[i] {
				t.Fatalf("scan[%d]", i)
			}
		}
		idx := PackIndex(n, func(i int) bool { return i%13 == 0 })
		if len(idx) != (n+12)/13 {
			t.Fatalf("pack len %d", len(idx))
		}
	})
}

func TestHistogramParallelPath(t *testing.T) {
	withWorkers(t, 8, func() {
		keys := make([]uint32, 1<<16)
		for i := range keys {
			keys[i] = uint32(i % 128)
		}
		h := Histogram(keys, 128)
		for k := 0; k < 128; k++ {
			if h[k] != 512 {
				t.Fatalf("hist[%d] = %d", k, h[k])
			}
		}
		perm, off := CountingSortByKey(keys, 128)
		if off[128] != int64(len(keys)) || len(perm) != len(keys) {
			t.Fatal("counting sort shape")
		}
	})
}

func TestReduceParallelPath(t *testing.T) {
	withWorkers(t, 16, func() {
		n := 1 << 17
		got := Sum(n, func(i int) int64 { return 1 })
		if got != int64(n) {
			t.Fatalf("sum %d", got)
		}
	})
}
