package parallel

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"slices"
	"sort"
	"sync/atomic"
	"testing"
)

// The scheduler conformance suite: every primitive in the package checked
// against a sequential oracle across adversarial worker counts, grains, and
// sizes. The axes deliberately include the degenerate paths — empty loops,
// single-chunk inline execution, grain exactly equal to / one off from n,
// and more workers than chunks — because those are the branches a scheduler
// rewrite is most likely to get subtly wrong.

// confWorkers returns the worker counts to sweep: {1, 2, 3, GOMAXPROCS},
// deduplicated.
func confWorkers() []int {
	ws := []int{1, 2, 3, runtime.GOMAXPROCS(0)}
	slices.Sort(ws)
	return slices.Compact(ws)
}

// confSizes returns the loop sizes to sweep for worker count p.
func confSizes(p int) []int {
	ns := []int{0, 1, 7, p, 10000}
	slices.Sort(ns)
	return slices.Compact(ns)
}

// confGrains returns the grain values to sweep for size n: adversarial
// boundaries plus 0 (auto).
func confGrains(n int) []int {
	gs := []int{1, 2, n - 1, n, n + 1, 0}
	slices.Sort(gs)
	gs = slices.Compact(gs)
	out := gs[:0]
	for _, g := range gs {
		if g >= 0 {
			out = append(out, g)
		}
	}
	return out
}

func TestConformanceForRange(t *testing.T) {
	for _, p := range confWorkers() {
		withWorkers(t, p, func() {
			for _, n := range confSizes(p) {
				for _, grain := range confGrains(n) {
					name := fmt.Sprintf("p=%d/n=%d/g=%d", p, n, grain)
					visits := make([]int32, n)
					var calls atomic.Int64
					ForRange(n, grain, func(lo, hi int) {
						calls.Add(1)
						if lo < 0 || hi > n || lo >= hi {
							panic(fmt.Sprintf("%s: bad chunk [%d,%d)", name, lo, hi))
						}
						if grain > 0 {
							// The documented alignment contract: exactly
							// [c*grain, min((c+1)*grain, n)).
							if lo%grain != 0 {
								panic(fmt.Sprintf("%s: lo=%d not grain-aligned", name, lo))
							}
							if want := min(lo+grain, n); hi != want {
								panic(fmt.Sprintf("%s: chunk [%d,%d), want hi=%d", name, lo, hi, want))
							}
						}
						for i := lo; i < hi; i++ {
							atomic.AddInt32(&visits[i], 1)
						}
					})
					for i, v := range visits {
						if v != 1 {
							t.Fatalf("%s: index %d visited %d times", name, i, v)
						}
					}
					if n == 0 && calls.Load() != 0 {
						t.Fatalf("%s: body called on empty loop", name)
					}
				}
			}
		})
	}
}

func TestConformanceFor(t *testing.T) {
	for _, p := range confWorkers() {
		withWorkers(t, p, func() {
			for _, n := range confSizes(p) {
				for _, grain := range confGrains(n) {
					got := make([]int64, n)
					For(n, grain, func(i int) {
						atomic.AddInt64(&got[i], int64(i)*3+1)
					})
					for i := range got {
						if want := int64(i)*3 + 1; got[i] != want {
							t.Fatalf("p=%d n=%d g=%d: got[%d]=%d, want %d", p, n, grain, i, got[i], want)
						}
					}
				}
			}
		})
	}
}

func TestConformanceReduce(t *testing.T) {
	for _, p := range confWorkers() {
		withWorkers(t, p, func() {
			for _, n := range confSizes(p) {
				var want int64
				for i := 0; i < n; i++ {
					want += int64(i)*int64(i) + 1
				}
				for _, grain := range confGrains(n) {
					got := Reduce(n, grain, int64(0),
						func(i int) int64 { return int64(i)*int64(i) + 1 },
						func(a, b int64) int64 { return a + b })
					if got != want {
						t.Fatalf("p=%d n=%d g=%d: Reduce = %d, want %d", p, n, grain, got, want)
					}
				}
			}
		})
	}
}

func TestConformanceScan(t *testing.T) {
	for _, p := range confWorkers() {
		withWorkers(t, p, func() {
			for _, n := range confSizes(p) {
				rng := rand.New(rand.NewPCG(uint64(p), uint64(n)))
				src := make([]int64, n)
				for i := range src {
					src[i] = int64(rng.IntN(100)) - 50
				}
				// Exclusive oracle.
				excl := make([]int64, n)
				var acc int64
				for i, v := range src {
					excl[i] = acc
					acc += v
				}
				work := slices.Clone(src)
				if total := Scan(work); total != acc {
					t.Fatalf("p=%d n=%d: Scan total = %d, want %d", p, n, total, acc)
				}
				if !slices.Equal(work, excl) {
					t.Fatalf("p=%d n=%d: exclusive scan mismatch", p, n)
				}
				// Inclusive oracle.
				incl := make([]int64, n)
				acc = 0
				for i, v := range src {
					acc += v
					incl[i] = acc
				}
				work = slices.Clone(src)
				if total := ScanInclusive(work); total != acc {
					t.Fatalf("p=%d n=%d: ScanInclusive total = %d, want %d", p, n, total, acc)
				}
				if !slices.Equal(work, incl) {
					t.Fatalf("p=%d n=%d: inclusive scan mismatch", p, n)
				}
			}
		})
	}
}

func TestConformancePack(t *testing.T) {
	keep := func(i int) bool { return i%3 == 0 || i%7 == 2 }
	for _, p := range confWorkers() {
		withWorkers(t, p, func() {
			for _, n := range confSizes(p) {
				var wantIdx []uint32
				for i := 0; i < n; i++ {
					if keep(i) {
						wantIdx = append(wantIdx, uint32(i))
					}
				}
				if got := PackIndex(n, keep); !slices.Equal(got, wantIdx) {
					t.Fatalf("p=%d n=%d: PackIndex = %v, want %v", p, n, got, wantIdx)
				}
				src := make([]int64, n)
				for i := range src {
					src[i] = int64(i) * 11
				}
				var wantVals []int64
				for i := 0; i < n; i++ {
					if keep(i) {
						wantVals = append(wantVals, src[i])
					}
				}
				if got := Pack(src, keep); !slices.Equal(got, wantVals) {
					t.Fatalf("p=%d n=%d: Pack mismatch", p, n)
				}
			}
		})
	}
}

func TestConformanceSort(t *testing.T) {
	for _, p := range confWorkers() {
		withWorkers(t, p, func() {
			for _, n := range confSizes(p) {
				rng := rand.New(rand.NewPCG(uint64(p)*31, uint64(n)))
				ints := make([]int, n)
				for i := range ints {
					ints[i] = rng.IntN(max(n/2, 1)) // plenty of duplicates
				}
				want := slices.Clone(ints)
				slices.Sort(want)
				got := slices.Clone(ints)
				SortFunc(got, func(a, b int) bool { return a < b })
				if !slices.Equal(got, want) {
					t.Fatalf("p=%d n=%d: SortFunc mismatch", p, n)
				}
				keys := make([]uint64, n)
				for i := range keys {
					keys[i] = rng.Uint64() >> uint(rng.IntN(64)) // vary key width
				}
				wantK := slices.Clone(keys)
				slices.Sort(wantK)
				SortUint64(keys)
				if !slices.Equal(keys, wantK) {
					t.Fatalf("p=%d n=%d: SortUint64 mismatch", p, n)
				}
			}
		})
	}
}

// TestConformancePartitionByKey checks the stable bucket partition against
// a sort.SliceStable oracle. The grain is internal (defaultGrain under the
// swept worker count drives the chunking), so the adversarial axis here is
// the key range k: 1 (everything one bucket), tiny ranges with huge
// buckets, and ranges larger than the input.
func TestConformancePartitionByKey(t *testing.T) {
	type rec struct {
		key uint32
		id  int
	}
	for _, p := range confWorkers() {
		withWorkers(t, p, func() {
			for _, n := range confSizes(p) {
				for _, k := range []int{1, 2, 3, 7, 256, 1000, n + 1} {
					if k < 1 {
						continue
					}
					rng := rand.New(rand.NewPCG(uint64(p)*13, uint64(n)*31+uint64(k)))
					src := make([]rec, n)
					for i := range src {
						src[i] = rec{key: uint32(rng.IntN(k)), id: i}
					}
					want := slices.Clone(src)
					sort.SliceStable(want, func(i, j int) bool { return want[i].key < want[j].key })
					hist := make([]int64, k)
					for _, r := range src {
						hist[r.key]++
					}
					dst := make([]rec, n)
					offsets := PartitionByKey(dst, src, k, func(r rec) uint32 { return r.key })
					if !slices.Equal(dst, want) {
						t.Fatalf("p=%d n=%d k=%d: partition not the stable order", p, n, k)
					}
					if len(offsets) != k+1 {
						t.Fatalf("p=%d n=%d k=%d: offsets length %d", p, n, k, len(offsets))
					}
					var acc int64
					for d := 0; d < k; d++ {
						if offsets[d] != acc {
							t.Fatalf("p=%d n=%d k=%d: offsets[%d]=%d, want %d", p, n, k, d, offsets[d], acc)
						}
						acc += hist[d]
					}
					if offsets[k] != int64(n) {
						t.Fatalf("p=%d n=%d k=%d: offsets[k]=%d, want %d", p, n, k, offsets[k], n)
					}
				}
			}
		})
	}
}

// TestConformancePartitionByBits checks the closure-free uint64 partition
// against its generic sibling's contract: words carry their key in the
// high bits and a unique id in the low bits, so the stable order is simply
// the fully sorted word order.
func TestConformancePartitionByBits(t *testing.T) {
	const shift = 20
	for _, p := range confWorkers() {
		withWorkers(t, p, func() {
			for _, n := range confSizes(p) {
				for _, k := range []int{1, 2, 7, 256, 1000, n + 1} {
					rng := rand.New(rand.NewPCG(uint64(p)*17, uint64(n)*37+uint64(k)))
					src := make([]uint64, n)
					for i := range src {
						src[i] = uint64(rng.IntN(k))<<shift | uint64(i)
					}
					want := slices.Clone(src)
					slices.Sort(want)
					hist := make([]int64, k)
					for _, x := range src {
						hist[x>>shift]++
					}
					dst := make([]uint64, n)
					offsets := PartitionByBits(dst, src, k, shift)
					if !slices.Equal(dst, want) {
						t.Fatalf("p=%d n=%d k=%d: partition not the stable order", p, n, k)
					}
					var acc int64
					for d := 0; d < k; d++ {
						if offsets[d] != acc {
							t.Fatalf("p=%d n=%d k=%d: offsets[%d]=%d, want %d", p, n, k, d, offsets[d], acc)
						}
						acc += hist[d]
					}
					if offsets[k] != int64(n) {
						t.Fatalf("p=%d n=%d k=%d: offsets[k]=%d, want %d", p, n, k, offsets[k], n)
					}
				}
			}
		})
	}
}

// TestConformanceCountSortByKey checks the payload-carrying radix sort
// against a sort.SliceStable oracle across key widths that exercise every
// pass-count (0 digits live, 1, several, all 8), with both a computed
// (maxKey=0) and an explicit tight bound. The input slice must come back
// untouched.
func TestConformanceCountSortByKey(t *testing.T) {
	type rec struct {
		key uint64
		id  int
	}
	widths := []uint{0, 1, 7, 8, 9, 16, 33, 64}
	for _, p := range confWorkers() {
		withWorkers(t, p, func() {
			for _, n := range confSizes(p) {
				for _, w := range widths {
					rng := rand.New(rand.NewPCG(uint64(p)*7, uint64(n)*101+uint64(w)))
					recs := make([]rec, n)
					var maxKey uint64
					for i := range recs {
						var k uint64
						if w > 0 {
							k = rng.Uint64() >> (64 - w)
						}
						if k > maxKey {
							maxKey = k
						}
						recs[i] = rec{key: k, id: i}
					}
					orig := slices.Clone(recs)
					want := slices.Clone(recs)
					sort.SliceStable(want, func(i, j int) bool { return want[i].key < want[j].key })
					for _, bound := range []uint64{0, maxKey} {
						got := CountSortByKey(recs, func(r rec) uint64 { return r.key }, bound)
						if !slices.Equal(got, want) {
							t.Fatalf("p=%d n=%d w=%d bound=%d: not the stable order", p, n, w, bound)
						}
						if !slices.Equal(recs, orig) {
							t.Fatalf("p=%d n=%d w=%d bound=%d: input modified", p, n, w, bound)
						}
					}
				}
			}
		})
	}
}

func TestConformanceHistogram(t *testing.T) {
	const k = 97
	for _, p := range confWorkers() {
		withWorkers(t, p, func() {
			for _, n := range confSizes(p) {
				rng := rand.New(rand.NewPCG(uint64(p)*77, uint64(n)))
				keys := make([]uint32, n)
				for i := range keys {
					keys[i] = uint32(rng.IntN(k))
				}
				want := make([]int64, k)
				for _, key := range keys {
					want[key]++
				}
				if got := Histogram(keys, k); !slices.Equal(got, want) {
					t.Fatalf("p=%d n=%d: Histogram mismatch", p, n)
				}

				perm, offsets := CountingSortByKey(keys, k)
				if len(perm) != n || len(offsets) != k+1 {
					t.Fatalf("p=%d n=%d: shapes perm=%d offsets=%d", p, n, len(perm), len(offsets))
				}
				// Offsets are the exclusive prefix sum of the histogram.
				var acc int64
				for key := 0; key < k; key++ {
					if offsets[key] != acc {
						t.Fatalf("p=%d n=%d: offsets[%d]=%d, want %d", p, n, key, offsets[key], acc)
					}
					acc += want[key]
				}
				if offsets[k] != int64(n) {
					t.Fatalf("p=%d n=%d: offsets[k]=%d, want %d", p, n, offsets[k], n)
				}
				// perm is a permutation, grouped by key, stable within a key
				// (indices strictly increasing, since the values being
				// sorted are the positions themselves).
				seen := make([]bool, n)
				for pos, idx := range perm {
					if int(idx) >= n || seen[idx] {
						t.Fatalf("p=%d n=%d: perm not a permutation at %d", p, n, pos)
					}
					seen[idx] = true
					key := keys[idx]
					if int64(pos) < offsets[key] || int64(pos) >= offsets[key+1] {
						t.Fatalf("p=%d n=%d: perm[%d]=%d (key %d) outside its group", p, n, pos, idx, key)
					}
					if pos > 0 && keys[perm[pos-1]] == key && perm[pos-1] >= idx {
						t.Fatalf("p=%d n=%d: not stable at %d", p, n, pos)
					}
				}
			}
		})
	}
}
