package parallel

import (
	"math/rand/v2"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1023, 4096, 100001} {
		seen := make([]atomic.Int32, max(n, 1))
		For(n, 0, func(i int) { seen[i].Add(1) })
		for i := 0; i < n; i++ {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, got)
			}
		}
	}
}

func TestForRangeChunksDisjointAndComplete(t *testing.T) {
	n := 54321
	seen := make([]atomic.Int32, n)
	ForRange(n, 17, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			seen[i].Add(1)
		}
	})
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("index %d visited %d times", i, seen[i].Load())
		}
	}
}

func TestForPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic to propagate")
		}
	}()
	For(10000, 1, func(i int) {
		if i == 777 {
			panic("boom")
		}
	})
}

func TestDo(t *testing.T) {
	var a, b, c atomic.Int32
	Do(func() { a.Store(1) }, func() { b.Store(2) }, func() { c.Store(3) })
	if a.Load() != 1 || b.Load() != 2 || c.Load() != 3 {
		t.Fatal("Do did not run all functions")
	}
	Do() // no-op
	ran := false
	Do(func() { ran = true })
	if !ran {
		t.Fatal("single-function Do did not run")
	}
}

func TestSetWorkers(t *testing.T) {
	old := SetWorkers(3)
	defer SetWorkers(old)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	SetWorkers(0) // resets to GOMAXPROCS
	if Workers() < 1 {
		t.Fatalf("Workers() = %d after reset", Workers())
	}
	SetWorkers(old)
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{0, 1, 10, 1000, 65537} {
		got := Sum(n, func(i int) int64 { return int64(i) })
		want := int64(n) * int64(n-1) / 2
		if n == 0 {
			want = 0
		}
		if got != want {
			t.Fatalf("Sum(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCount(t *testing.T) {
	n := 100000
	got := Count(n, func(i int) bool { return i%3 == 0 })
	want := (n + 2) / 3
	if got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
}

func TestMinMax(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	vals := make([]int64, 9999)
	for i := range vals {
		vals[i] = rng.Int64N(1 << 40)
	}
	vals[1234] = -5
	vals[8888] = 1 << 41
	if got := Min(len(vals), func(i int) int64 { return vals[i] }); got != -5 {
		t.Fatalf("Min = %d", got)
	}
	if got := Max(len(vals), func(i int) int64 { return vals[i] }); got != 1<<41 {
		t.Fatalf("Max = %d", got)
	}
	if got := MaxIndex(len(vals), func(i int) int64 { return vals[i] }); got != 8888 {
		t.Fatalf("MaxIndex = %d", got)
	}
}

func TestMaxIndexTiesPickEarliest(t *testing.T) {
	vals := []int{3, 9, 1, 9, 9}
	if got := MaxIndex(len(vals), func(i int) int { return vals[i] }); got != 1 {
		t.Fatalf("MaxIndex = %d, want 1", got)
	}
}

func TestScanMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, n := range []int{0, 1, 2, 100, 12345, 1 << 17} {
		src := make([]int64, n)
		for i := range src {
			src[i] = rng.Int64N(100) - 50
		}
		want := make([]int64, n)
		var acc, wantTotal int64
		for i := range src {
			want[i] = acc
			acc += src[i]
		}
		wantTotal = acc
		got := Scan(src)
		if got != wantTotal {
			t.Fatalf("n=%d: Scan total = %d, want %d", n, got, wantTotal)
		}
		for i := range src {
			if src[i] != want[i] {
				t.Fatalf("n=%d: Scan[%d] = %d, want %d", n, i, src[i], want[i])
			}
		}
	}
}

func TestScanInclusive(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for _, n := range []int{0, 1, 2, 1000, 1 << 16} {
		src := make([]int64, n)
		for i := range src {
			src[i] = rng.Int64N(10)
		}
		want := make([]int64, n)
		var acc int64
		for i := range src {
			acc += src[i]
			want[i] = acc
		}
		total := ScanInclusive(src)
		if n > 0 && total != want[n-1] {
			t.Fatalf("n=%d: total=%d want %d", n, total, want[n-1])
		}
		for i := range src {
			if src[i] != want[i] {
				t.Fatalf("n=%d: [%d]=%d want %d", n, i, src[i], want[i])
			}
		}
	}
}

func TestPackIndex(t *testing.T) {
	n := 100001
	got := PackIndex(n, func(i int) bool { return i%7 == 0 })
	for k, v := range got {
		if int(v) != k*7 {
			t.Fatalf("PackIndex[%d] = %d, want %d", k, v, k*7)
		}
	}
	if len(got) != (n+6)/7 {
		t.Fatalf("len = %d", len(got))
	}
	if PackIndex(0, func(int) bool { return true }) != nil {
		t.Fatal("PackIndex(0) should be nil")
	}
}

func TestPack(t *testing.T) {
	src := make([]int, 50000)
	for i := range src {
		src[i] = i * 2
	}
	got := Pack(src, func(i int) bool { return i%10 == 3 })
	if len(got) != 5000 {
		t.Fatalf("len = %d", len(got))
	}
	for k, v := range got {
		if v != (k*10+3)*2 {
			t.Fatalf("Pack[%d] = %d", k, v)
		}
	}
}

func TestFillCopyTabulate(t *testing.T) {
	dst := make([]int, 33333)
	Fill(dst, 42)
	for i, v := range dst {
		if v != 42 {
			t.Fatalf("Fill[%d] = %d", i, v)
		}
	}
	src := Tabulate(33333, func(i int) int { return i * 3 })
	out := make([]int, len(src))
	Copy(out, src)
	for i := range out {
		if out[i] != i*3 {
			t.Fatalf("Copy/Tabulate[%d] = %d", i, out[i])
		}
	}
}

func TestSortFunc(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for _, n := range []int{0, 1, 2, 100, 5000, 1 << 15, 1<<15 + 7} {
		s := make([]uint64, n)
		for i := range s {
			s[i] = rng.Uint64N(1000) // many duplicates
		}
		SortFunc(s, func(a, b uint64) bool { return a < b })
		for i := 1; i < n; i++ {
			if s[i-1] > s[i] {
				t.Fatalf("n=%d: not sorted at %d", n, i)
			}
		}
	}
}

func TestSortUint64(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	for _, n := range []int{0, 1, 100, 1 << 13, 1 << 15} {
		s := make([]uint64, n)
		for i := range s {
			s[i] = rng.Uint64()
		}
		SortUint64(s)
		for i := 1; i < n; i++ {
			if s[i-1] > s[i] {
				t.Fatalf("n=%d: not sorted at %d", n, i)
			}
		}
	}
	// Small-key case exercises the early digit cutoff.
	s := make([]uint64, 1<<14)
	for i := range s {
		s[i] = uint64(rng.Uint32N(256))
	}
	SortUint64(s)
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			t.Fatalf("small keys: not sorted at %d", i)
		}
	}
}

func TestSchedStats(t *testing.T) {
	// Force a multi-participant launch even on a single-core machine: with
	// p=1 the loop has one participant and publishes no helper slots.
	defer SetWorkers(SetWorkers(4))
	ResetSchedStats()
	For(100000, 64, func(int) {})
	st := SchedStats()
	if st.Loops < 1 || st.Forks < 1 {
		t.Fatalf("expected scheduling activity, got %+v", st)
	}
	For(10, 64, func(int) {})
	if got := SchedStats().Inline; got < 1 {
		t.Fatalf("expected inline loop, got %d", got)
	}
	ResetSchedStats()
	if st := SchedStats(); st != (SchedCounts{}) {
		t.Fatalf("reset failed: %+v", st)
	}
}
