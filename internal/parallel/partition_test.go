package parallel

import (
	"encoding/binary"
	"math/rand/v2"
	"slices"
	"sort"
	"testing"
)

func TestPartitionByKeyPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("length mismatch", func() {
		PartitionByKey(make([]int, 3), make([]int, 4), 2, func(int) uint32 { return 0 })
	})
	expectPanic("k < 1", func() {
		PartitionByKey([]int{}, []int{}, 0, func(int) uint32 { return 0 })
	})
	expectPanic("key out of range", func() {
		PartitionByKey(make([]int, 2), []int{1, 2}, 1, func(v int) uint32 { return uint32(v) })
	})
}

// TestPartitionByKeyHugeKeyRange pins the sequential fallback for key
// ranges past the dense-histogram cutoff (k > 1<<16): still stable, still
// correct offsets.
func TestPartitionByKeyHugeKeyRange(t *testing.T) {
	const k = 1<<16 + 9
	const n = 5000
	rng := rand.New(rand.NewPCG(5, 5))
	type rec struct {
		key uint32
		id  int
	}
	src := make([]rec, n)
	for i := range src {
		src[i] = rec{key: uint32(rng.IntN(k)), id: i}
	}
	want := slices.Clone(src)
	sort.SliceStable(want, func(i, j int) bool { return want[i].key < want[j].key })
	dst := make([]rec, n)
	offsets := PartitionByKey(dst, src, k, func(r rec) uint32 { return r.key })
	if !slices.Equal(dst, want) {
		t.Fatal("huge-k partition not the stable order")
	}
	if offsets[k] != n {
		t.Fatalf("offsets[k] = %d, want %d", offsets[k], n)
	}
}

// TestCountSortByKeyLargeStable drives the multi-pass radix path (n well
// past the sequential cutoff, 64-bit keys with heavy duplication) and
// checks stability via the carried payload.
func TestCountSortByKeyLargeStable(t *testing.T) {
	withWorkers(t, 8, func() {
		const n = 1 << 15
		rng := rand.New(rand.NewPCG(9, 9))
		type rec struct {
			key uint64
			id  int
		}
		recs := make([]rec, n)
		for i := range recs {
			recs[i] = rec{key: rng.Uint64() % 997, id: i} // ~33 dups per key
		}
		want := slices.Clone(recs)
		sort.SliceStable(want, func(i, j int) bool { return want[i].key < want[j].key })
		got := CountSortByKey(recs, func(r rec) uint64 { return r.key }, 0)
		if !slices.Equal(got, want) {
			t.Fatal("large radix sort not the stable order")
		}
	})
}

// FuzzCountSortByKey checks the radix sort against the sort.SliceStable
// oracle on arbitrary byte-derived keys at arbitrary key widths, and that
// the input survives unmodified.
func FuzzCountSortByKey(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, uint8(13))
	f.Add(make([]byte, 256), uint8(64))
	seed := make([]byte, 8*300)
	for i := range seed {
		seed[i] = byte(i * 31)
	}
	f.Add(seed, uint8(40))
	f.Fuzz(func(t *testing.T, data []byte, width uint8) {
		type rec struct {
			key uint64
			id  int
		}
		w := uint(width % 65)
		var recs []rec
		for i := 0; i+8 <= len(data); i += 8 {
			k := binary.LittleEndian.Uint64(data[i:])
			if w == 0 {
				k = 0
			} else if w < 64 {
				k >>= 64 - w
			}
			recs = append(recs, rec{key: k, id: i / 8})
		}
		orig := slices.Clone(recs)
		want := slices.Clone(recs)
		sort.SliceStable(want, func(i, j int) bool { return want[i].key < want[j].key })
		got := CountSortByKey(recs, func(r rec) uint64 { return r.key }, 0)
		if !slices.Equal(got, want) {
			t.Fatalf("width %d: not the stable sorted order", w)
		}
		if !slices.Equal(recs, orig) {
			t.Fatalf("width %d: input modified", w)
		}
	})
}
