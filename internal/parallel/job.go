package parallel

import (
	"sync"
	"sync/atomic"
)

// maxChunks bounds a loop's chunk count: chunk indices are packed two to a
// uint64 in the range slots.
const maxChunks = 1<<32 - 1

// A job is one in-flight fork-join launch: either a chunked loop (body,
// grain, n, slots set) or a Do fork set (arms set). Exactly one of the two
// shapes is populated.
//
// Loop ownership protocol: slots[i] holds a packed [lo,hi) range of chunk
// indices. Participant i (the caller is always participant 0; pool workers
// acquire participant tickets) claims one chunk at a time off the front of
// slots[i] with a CAS. When its slot is empty it steals the back half of a
// random victim's range, keeps the first stolen chunk, and deposits the
// rest into its own slot. Deposits are plain atomic stores: only the slot's
// owner writes a non-empty range into an empty slot, and takeOne/stealHalf
// never CAS an empty slot, so the store cannot race with a successful CAS.
//
// Join protocol: pending counts unfinished chunks (or unfinished arms for a
// fork set). Every claimed chunk is executed (or skipped, after a panic)
// and then decrements pending exactly once; whoever moves pending to zero
// closes done. The launching call waits on done only when work it could not
// claim back is still running on another worker.
type job struct {
	body    func(lo, hi int)
	grain   int
	n       int
	slots   []slot
	tickets atomic.Int32 // helper tickets handed out (caller holds slot 0)

	arms []forkArm

	// cancel, when non-nil, is polled once per chunk claim: a fired token
	// makes runLoop drain remaining chunks without executing the body,
	// exactly like the post-panic path. Do arms are not cancellable — a
	// fork's arms are a fixed, small set the caller steals back at the
	// join, so there is nothing meaningful to shed.
	cancel *Cancel

	pending   atomic.Int64
	done      chan struct{}
	panicked  atomic.Bool
	panicOnce sync.Once
	panicVal  any
}

// forkArm is one stealable Do arm.
type forkArm struct {
	fn    func()
	state atomic.Int32
}

const (
	armPending int32 = iota
	armClaimed
)

// slot holds one participant's remaining chunk range, packed lo<<32|hi,
// padded so neighboring participants' CAS traffic does not share a cache
// line.
type slot struct {
	bounds atomic.Uint64
	_      [7]uint64
}

func pack(lo, hi int) uint64     { return uint64(lo)<<32 | uint64(hi) }
func unpack(b uint64) (int, int) { return int(b >> 32), int(b & 0xffffffff) }

// takeOne claims the front chunk of the slot's range.
func (s *slot) takeOne() (int, bool) {
	for {
		b := s.bounds.Load()
		lo, hi := unpack(b)
		if lo >= hi {
			return 0, false
		}
		if s.bounds.CompareAndSwap(b, pack(lo+1, hi)) {
			return lo, true
		}
	}
}

// stealHalf removes and returns the back half of the slot's range (the
// whole range when only one chunk remains; the victim keeps the larger
// half otherwise).
func (s *slot) stealHalf() (lo, hi int, ok bool) {
	for {
		b := s.bounds.Load()
		slo, shi := unpack(b)
		size := shi - slo
		if size <= 0 {
			return 0, 0, false
		}
		mid := slo + (size+1)/2
		if size == 1 {
			mid = slo
		}
		if s.bounds.CompareAndSwap(b, pack(slo, mid)) {
			return mid, shi, true
		}
	}
}

// wanted reports how many helpers a freshly published job can use, for the
// publisher's wake call.
func (j *job) wanted() int {
	if j.arms != nil {
		return len(j.arms)
	}
	return len(j.slots) - 1
}

// help lets a pool worker join j. Loop helpers are bounded by the
// participant slots the launch pre-split (the caller holds slot 0); fork
// arms are claimed individually. It reports whether any work was executed.
func (j *job) help(w *worker) bool {
	if j.arms != nil {
		return j.helpFork()
	}
	t := int(j.tickets.Add(1))
	if t >= len(j.slots) {
		j.tickets.Add(-1)
		return false
	}
	return j.runLoop(t)
}

// helpFork claims and runs every still-pending arm.
func (j *job) helpFork() bool {
	did := false
	for i := range j.arms {
		a := &j.arms[i]
		if a.state.Load() == armPending && a.state.CompareAndSwap(armPending, armClaimed) {
			statSteals.Add(1)
			tracer.Load().Steal()
			j.runArm(a)
			did = true
		}
	}
	return did
}

// runLoop is one participant's scheduling loop: drain the home slot one
// chunk at a time, then steal halves of other participants' remaining
// ranges. Returns when no claimable chunk is left anywhere, reporting
// whether it executed (or drained) at least one chunk.
func (j *job) runLoop(home int) bool {
	rng := uint64(home)*0x9e3779b97f4a7c15 | 1
	did := false
	for {
		c, ok := j.slots[home].takeOne()
		if !ok {
			c, ok = j.steal(home, &rng)
			if !ok {
				return did
			}
		}
		did = true
		lo := c * j.grain
		hi := lo + j.grain
		if hi > j.n {
			hi = j.n
		}
		// After a panic — or once the job's cancel token fires — the
		// remaining chunks are drained without running the body, so the
		// join completes in O(chunks) claim work and the launch returns
		// promptly. This poll at the chunk-claim boundary (takeOne or
		// stealHalf above) is the entire per-chunk cancellation cost: one
		// nil test plus, for cancellable loops, one atomic load.
		if !j.panicked.Load() && !j.cancel.Canceled() {
			j.exec(lo, hi)
		}
		if j.pending.Add(-1) == 0 {
			close(j.done)
			return true
		}
	}
}

// steal scans the other slots from a random offset, moves the back half of
// the first non-empty range into the (empty) home slot, and returns the
// first stolen chunk.
func (j *job) steal(home int, rng *uint64) (int, bool) {
	k := len(j.slots)
	x := *rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*rng = x
	off := int(x % uint64(k))
	for i := 0; i < k; i++ {
		v := off + i
		if v >= k {
			v -= k
		}
		if v == home {
			continue
		}
		lo, hi, ok := j.slots[v].stealHalf()
		if !ok {
			continue
		}
		statSteals.Add(1)
		tracer.Load().Steal()
		if hi-lo > 1 {
			j.slots[home].bounds.Store(pack(lo+1, hi))
		}
		return lo, true
	}
	return 0, false
}

// exec runs one chunk of the loop body, capturing the first panic.
func (j *job) exec(lo, hi int) {
	defer j.recoverInto()
	j.body(lo, hi)
}

// exec1 runs a Do arm inline on the caller, capturing the first panic.
func (j *job) exec1(fn func()) {
	defer j.recoverInto()
	fn()
}

// runArm executes a claimed fork arm and retires it.
func (j *job) runArm(a *forkArm) {
	j.exec1(a.fn)
	if j.pending.Add(-1) == 0 {
		close(j.done)
	}
}

// recoverInto records a panic value into the job exactly once (the first
// panicking chunk/arm wins) and marks the job panicked. The value is read
// by the launching call after the join, which the panicked flag's
// store/load pair orders.
func (j *job) recoverInto() {
	if r := recover(); r != nil {
		j.panicOnce.Do(func() { j.panicVal = r })
		j.panicked.Store(true)
	}
}
