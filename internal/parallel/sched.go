package parallel

import (
	"sync"
	"sync/atomic"
)

// boardSize is the number of in-flight launch slots on the job board. Deep
// nesting can exceed it; a launch that finds the board full simply runs on
// its caller alone (correct, just not helped), so the bound is a back-
// pressure valve, not a limit on nesting depth.
const boardSize = 64

// pool is the persistent worker pool: a fixed board of in-flight jobs that
// workers scan, plus the parking machinery. There is one package-global
// instance (sched); loops launch from anywhere, so the pool is global too.
//
// Parking protocol: a worker that finds no claimable work reads seq,
// advertises itself in idle, rescans once, and only then blocks on cond
// while seq is unchanged. A publisher stores the job on the board, bumps
// seq, and signals only when idle > 0. All four operations are
// sequentially-consistent atomics, so either the worker's rescan sees the
// published job or the publisher's idle load sees the worker — a wakeup is
// never lost.
type pool struct {
	board [boardSize]atomic.Pointer[job]

	seq  atomic.Uint64 // bumped by every publish; parked workers watch it
	idle atomic.Int32  // workers inside the rescan-then-park window
	rr   atomic.Uint32 // round-robin start for board slot probing

	genLive atomic.Uint64 // current worker generation (mirror of gen)

	mu      sync.Mutex // guards cond, started, gen
	cond    *sync.Cond
	started bool
	gen     uint64
}

var sched = func() *pool {
	p := &pool{}
	p.cond = sync.NewCond(&p.mu)
	return p
}()

// startedHint is a fast-path flag so ensure costs one atomic load once the
// pool is running.
var startedHint atomic.Bool

// ensure lazily starts the worker pool at the current Workers() size.
func (p *pool) ensure() {
	if startedHint.Load() {
		return
	}
	p.mu.Lock()
	if !p.started {
		p.started = true
		p.spawnLocked(Workers())
		startedHint.Store(true)
	}
	p.mu.Unlock()
}

// resize restarts the pool at n workers. The generation counter retires the
// old workers: each one exits after the task it is currently executing (or
// immediately, if parked). Chunk ranges already claimed by old-generation
// workers are executed to completion before the worker retires, so no work
// is dropped.
func (p *pool) resize(n int) {
	p.mu.Lock()
	if p.started {
		p.spawnLocked(n)
	}
	p.mu.Unlock()
}

func (p *pool) spawnLocked(n int) {
	p.gen++
	p.genLive.Store(p.gen)
	statSpawns.Add(int64(n))
	for i := 0; i < n; i++ {
		w := &worker{gen: p.gen, rng: uint64(i)*0x9e3779b97f4a7c15 + p.gen | 1}
		go w.run()
	}
	// Old-generation parked workers must notice the change and exit.
	p.cond.Broadcast()
}

// publish places j on the board and wakes up to wanted parked workers.
// It reports the slot used; ok is false when the board is full, in which
// case the caller runs the job alone.
func (p *pool) publish(j *job) (slot int, ok bool) {
	off := int(p.rr.Add(1)) & (boardSize - 1)
	for i := 0; i < boardSize; i++ {
		s := (off + i) & (boardSize - 1)
		if p.board[s].CompareAndSwap(nil, j) {
			p.wake(j.wanted())
			return s, true
		}
	}
	return 0, false
}

// unpublish removes j from slot s. CAS, not Store: the slot may already
// have been reused after a concurrent unpublish of the same job is
// impossible, but the guard keeps the operation idempotent.
func (p *pool) unpublish(s int, j *job) {
	p.board[s].CompareAndSwap(j, nil)
}

// wake signals up to n parked workers to rescan the board.
func (p *pool) wake(n int) {
	p.seq.Add(1)
	idle := int(p.idle.Load())
	if idle == 0 {
		return
	}
	if n > idle {
		n = idle
	}
	if n <= 0 {
		return
	}
	statWakes.Add(int64(n))
	tracer.Load().Wake(int64(n))
	p.mu.Lock()
	for i := 0; i < n; i++ {
		p.cond.Signal()
	}
	p.mu.Unlock()
}

// worker is one pool goroutine. Its only state is its generation (for
// retirement) and a private xorshift state for randomized victim selection.
type worker struct {
	gen uint64
	rng uint64
}

func (w *worker) run() {
	for {
		if sched.genLive.Load() != w.gen {
			return
		}
		if w.findWork() {
			continue
		}
		// Idle path: record seq before the final rescan so a publish that
		// the rescan misses is guaranteed to change seq before we park.
		seq := sched.seq.Load()
		sched.idle.Add(1)
		if !w.findWork() {
			w.park(seq)
		}
		sched.idle.Add(-1)
	}
}

// park blocks until the board generation seq moves past the recorded value
// or the worker's generation is retired.
func (w *worker) park(seq uint64) {
	sched.mu.Lock()
	if sched.seq.Load() == seq && sched.gen == w.gen {
		statParks.Add(1)
		tracer.Load().Park()
		for sched.seq.Load() == seq && sched.gen == w.gen {
			sched.cond.Wait()
		}
	}
	sched.mu.Unlock()
}

// findWork scans the board from a random offset and helps the first job
// with claimable work. It reports whether it executed anything.
func (w *worker) findWork() bool {
	off := int(w.next()) & (boardSize - 1)
	for i := 0; i < boardSize; i++ {
		j := sched.board[(off+i)&(boardSize-1)].Load()
		if j != nil && j.help(w) {
			return true
		}
	}
	return false
}

func (w *worker) next() uint64 {
	x := w.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng = x
	return x
}
