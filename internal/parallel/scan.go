package parallel

// Scan replaces src with its exclusive prefix sum and returns the total.
// It is the classic two-pass blocked algorithm: per-block sums, a serial
// scan over the (few) block sums, then a parallel fill pass.
func Scan[T Number](src []T) T {
	n := len(src)
	if n == 0 {
		return 0
	}
	p := Workers()
	grain := defaultGrain(n, p)
	chunks := (n + grain - 1) / grain
	if chunks <= 1 {
		var acc T
		for i := range src {
			v := src[i]
			src[i] = acc
			acc += v
		}
		return acc
	}
	sums := make([]T, chunks)
	ForRange(n, grain, func(lo, hi int) {
		var acc T
		for i := lo; i < hi; i++ {
			acc += src[i]
		}
		sums[lo/grain] = acc
	})
	var total T
	for i, v := range sums {
		sums[i] = total
		total += v
	}
	ForRange(n, grain, func(lo, hi int) {
		acc := sums[lo/grain]
		for i := lo; i < hi; i++ {
			v := src[i]
			src[i] = acc
			acc += v
		}
	})
	return total
}

// ScanInclusive replaces src with its inclusive prefix sum and returns the
// total.
func ScanInclusive[T Number](src []T) T {
	n := len(src)
	if n == 0 {
		return 0
	}
	p := Workers()
	grain := defaultGrain(n, p)
	chunks := (n + grain - 1) / grain
	if chunks <= 1 {
		var acc T
		for i := range src {
			acc += src[i]
			src[i] = acc
		}
		return acc
	}
	sums := make([]T, chunks)
	ForRange(n, grain, func(lo, hi int) {
		var acc T
		for i := lo; i < hi; i++ {
			acc += src[i]
		}
		sums[lo/grain] = acc
	})
	var total T
	for i, v := range sums {
		sums[i] = total
		total += v
	}
	ForRange(n, grain, func(lo, hi int) {
		acc := sums[lo/grain]
		for i := lo; i < hi; i++ {
			acc += src[i]
			src[i] = acc
		}
	})
	return total
}

// PackIndex returns, in increasing order, every i in [0,n) with keep(i)
// true. keep is evaluated twice per index (count pass, then write pass) and
// must therefore be pure.
func PackIndex(n int, keep func(i int) bool) []uint32 {
	if n == 0 {
		return nil
	}
	p := Workers()
	grain := defaultGrain(n, p)
	chunks := (n + grain - 1) / grain
	counts := make([]int, chunks)
	ForRange(n, grain, func(lo, hi int) {
		c := 0
		for i := lo; i < hi; i++ {
			if keep(i) {
				c++
			}
		}
		counts[lo/grain] = c
	})
	total := Scan(counts)
	out := make([]uint32, total)
	ForRange(n, grain, func(lo, hi int) {
		at := counts[lo/grain]
		for i := lo; i < hi; i++ {
			if keep(i) {
				out[at] = uint32(i)
				at++
			}
		}
	})
	return out
}

// Pack returns the elements of src whose index satisfies keep, in order.
// keep is evaluated twice per index and must be pure.
func Pack[T any](src []T, keep func(i int) bool) []T {
	n := len(src)
	if n == 0 {
		return nil
	}
	p := Workers()
	grain := defaultGrain(n, p)
	chunks := (n + grain - 1) / grain
	counts := make([]int, chunks)
	ForRange(n, grain, func(lo, hi int) {
		c := 0
		for i := lo; i < hi; i++ {
			if keep(i) {
				c++
			}
		}
		counts[lo/grain] = c
	})
	total := Scan(counts)
	out := make([]T, total)
	ForRange(n, grain, func(lo, hi int) {
		at := counts[lo/grain]
		for i := lo; i < hi; i++ {
			if keep(i) {
				out[at] = src[i]
				at++
			}
		}
	})
	return out
}

// Fill sets every element of dst to v in parallel.
func Fill[T any](dst []T, v T) {
	ForRange(len(dst), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = v
		}
	})
}

// Copy copies src into dst (which must be at least as long) in parallel.
func Copy[T any](dst, src []T) {
	ForRange(len(src), 0, func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}

// Tabulate builds a slice of length n with out[i] = f(i), in parallel.
func Tabulate[T any](n int, f func(i int) T) []T {
	out := make([]T, n)
	For(n, 0, func(i int) { out[i] = f(i) })
	return out
}
