package parallel

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCancelNilSafety pins the "nil token never cancels" contract every
// non-cancellable entry point relies on: all methods must be safe and
// behave as an unfired token on a nil receiver.
func TestCancelNilSafety(t *testing.T) {
	var c *Cancel
	if c.Canceled() {
		t.Fatal("nil token reports canceled")
	}
	if c.Cause() != nil {
		t.Fatalf("nil token has cause %v", c.Cause())
	}
	c.Fire(errors.New("ignored")) // must not panic
	if c.Canceled() {
		t.Fatal("nil token canceled after Fire")
	}
}

// TestCancelFirstFireWins checks stickiness and cause retention: the first
// Fire's cause is kept, later calls (including nil-cause ones) are no-ops.
func TestCancelFirstFireWins(t *testing.T) {
	first := errors.New("first")
	c := NewCancel()
	if c.Canceled() || c.Cause() != nil {
		t.Fatal("fresh token not in the unfired state")
	}
	c.Fire(first)
	c.Fire(errors.New("second"))
	c.Fire(nil)
	if !c.Canceled() {
		t.Fatal("token not canceled after Fire")
	}
	if got := c.Cause(); got != first {
		t.Fatalf("Cause() = %v, want the first Fire's cause", got)
	}
}

// TestCancelNilCause: Fire(nil) is a valid cancellation ("canceled without
// explanation") and still latches the flag.
func TestCancelNilCause(t *testing.T) {
	c := NewCancel()
	c.Fire(nil)
	if !c.Canceled() {
		t.Fatal("token not canceled after Fire(nil)")
	}
	if c.Cause() != nil {
		t.Fatalf("Cause() = %v, want nil", c.Cause())
	}
	// A later cause must not overwrite the nil one: the first Fire won.
	c.Fire(errors.New("late"))
	if c.Cause() != nil {
		t.Fatal("later Fire overwrote the winning nil cause")
	}
}

// TestForRangeCancelPreFired: a token that fired before the launch must
// prevent every body execution — the launch path short-circuits, so not
// even one inline chunk runs.
func TestForRangeCancelPreFired(t *testing.T) {
	c := NewCancel()
	c.Fire(nil)
	var ran atomic.Int64
	ForRangeCancel(c, 1<<16, 64, func(lo, hi int) { ran.Add(int64(hi - lo)) })
	ForCancel(c, 1<<16, 64, func(i int) { ran.Add(1) })
	if got := ran.Load(); got != 0 {
		t.Fatalf("pre-fired token executed %d iterations, want 0", got)
	}
}

// TestForRangeCancelNilTokenIsForRange: a nil token must make
// ForRangeCancel exactly ForRange — every index visited exactly once.
func TestForRangeCancelNilTokenIsForRange(t *testing.T) {
	const n = 100001
	seen := make([]atomic.Int32, n)
	ForRangeCancel(nil, n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			seen[i].Add(1)
		}
	})
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
}

// TestForRangeCancelDrains fires the token from inside the body and checks
// the drain contract: the launch returns normally, skipped chunks never run,
// and the work done after the fire is bounded by the chunks already in
// flight (at most one per participant), not by the remaining iteration
// space.
func TestForRangeCancelDrains(t *testing.T) {
	const (
		n     = 1 << 20
		grain = 256
	)
	for trial := 0; trial < 20; trial++ {
		c := NewCancel()
		var ran atomic.Int64
		ForRangeCancel(c, n, grain, func(lo, hi int) {
			if ran.Add(int64(hi-lo)) >= 4*grain {
				c.Fire(nil)
			}
		})
		if !c.Canceled() {
			t.Fatal("token did not fire")
		}
		// After the fire, each participant may finish the one chunk it had
		// already claimed; everything else must drain without running.
		bound := int64(4*grain + (Workers()+1)*grain)
		if got := ran.Load(); got >= n || got > bound {
			t.Fatalf("trial %d: %d of %d iterations ran after cancel (bound %d): drain did not bound the work",
				trial, got, n, bound)
		}
	}
}

// TestForRangeCancelJoinComplete: even on a canceled loop the join must be
// complete — no body invocation may still be running (or start) after
// ForRangeCancel returns.
func TestForRangeCancelJoinComplete(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		c := NewCancel()
		var inFlight, ran atomic.Int64
		ForRangeCancel(c, 1<<18, 64, func(lo, hi int) {
			inFlight.Add(1)
			if ran.Add(int64(hi-lo)) > 1<<12 {
				c.Fire(nil)
			}
			inFlight.Add(-1)
		})
		if got := inFlight.Load(); got != 0 {
			t.Fatalf("trial %d: %d body calls still in flight after return", trial, got)
		}
	}
}

// TestForRangeCancelPanicWins: a body panic must still propagate exactly
// once out of a canceled launch — cancellation drains work, it must not
// swallow the panic that was already in flight.
func TestForRangeCancelPanicWins(t *testing.T) {
	c := NewCancel()
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate through a canceled launch")
		}
	}()
	ForRangeCancel(c, 1<<16, 64, func(lo, hi int) {
		c.Fire(nil)
		panic("boom")
	})
}

// TestStressCancelConcurrentFire hammers the fire/drain race from outside
// the loop: many trials where an independent goroutine fires the token at a
// random point while the loop runs. Under -race this checks the
// flag-publication ordering between Fire and the per-chunk poll; the
// invariants are the same as the deterministic tests (join complete, no
// full execution once fired early, Cause visible after Canceled).
func TestStressCancelConcurrentFire(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped with -short")
	}
	cause := errors.New("external stop")
	for trial := 0; trial < 200; trial++ {
		c := NewCancel()
		var ran atomic.Int64
		var wg sync.WaitGroup
		release := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-release
			c.Fire(cause)
		}()
		ForRangeCancel(c, 1<<16, 32, func(lo, hi int) {
			if lo == 0 {
				close(release)
			}
			ran.Add(int64(hi - lo))
		})
		wg.Wait()
		if !c.Canceled() {
			t.Fatal("token not canceled after Fire returned")
		}
		if got := c.Cause(); got != cause {
			t.Fatalf("trial %d: Cause() = %v, want the firing goroutine's cause", trial, got)
		}
	}
}
