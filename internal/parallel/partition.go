package parallel

import "sort"

// This file holds the contention-free partitioning primitives: the
// count–scan–scatter pattern proven in SortUint64, generalized to
// payload-carrying records and arbitrary key ranges. Both primitives are
// stable and their hot loops contain no atomic operations: every chunk
// counts into its own histogram slice, the histograms are combined with one
// exclusive Scan in column-major (key-major) order, and the scatter bumps
// owner-local plain-store cursors. Stability falls out of the column-major
// scan: for equal keys, earlier chunks receive earlier output slots, and
// within a chunk the scatter walks the input left to right.

// partitionSeqCutoff is the input size below which the partitioning
// primitives run a plain sequential counting sort: below it the per-chunk
// histograms and extra parallel launches cost more than they save.
const partitionSeqCutoff = 1 << 12

// ScanChunkCursors turns per-chunk key counts (row-major: counts[c*k+d] is
// chunk c's count of key d) into per-chunk scatter cursors: the start slot
// for key d in chunk c becomes the total count of smaller keys plus the
// key-d counts of earlier chunks. The exclusive prefix sum runs over the
// column-major (key-major) transposition of the counts, which is exactly
// what makes the downstream scatter stable. col is scratch of the same
// length as counts. If offsets is non-nil (length k+1) it receives the key
// group boundaries. Returns the total count.
//
// It is exported as the midpoint of the count–scan–scatter idiom for
// callers whose count or scatter loops read sources PartitionByKey cannot
// express (the graph builders' transpose, which packs arcs straight out of
// CSR form): bring your own chunked count pass, scan here, then scatter
// through counts[c*k+d]++ cursors — stability and zero atomics included.
func ScanChunkCursors(counts, col []int64, chunks, k int, offsets []int64) int64 {
	For(k, 0, func(d int) {
		for c := 0; c < chunks; c++ {
			col[d*chunks+c] = counts[c*k+d]
		}
	})
	total := Scan(col)
	For(k, 0, func(d int) {
		for c := 0; c < chunks; c++ {
			counts[c*k+d] = col[d*chunks+c]
		}
	})
	if offsets != nil {
		For(k, 0, func(d int) { offsets[d] = col[d*chunks] })
		offsets[k] = total
	}
	return total
}

// PartitionByKey stably partitions src into dst grouped by key (values in
// [0,k)): records with smaller keys come first, and records with equal keys
// keep their input order. It returns the k+1 group offsets
// (dst[offsets[d]:offsets[d+1]] holds the key-d records). dst must have the
// same length as src and must not overlap it. Keys outside [0,k) panic.
//
// This is one count–scan–scatter pass: per-chunk histograms, one exclusive
// Scan over the column-major counts, then a scatter through owner-local
// cursors — no atomic operations anywhere on the hot path, so throughput is
// independent of how skewed the key distribution is.
func PartitionByKey[T any](dst, src []T, k int, key func(T) uint32) []int64 {
	n := len(src)
	if len(dst) != n {
		panic("parallel: PartitionByKey dst length != src length")
	}
	if k < 1 {
		panic("parallel: PartitionByKey needs k >= 1")
	}
	offsets := make([]int64, k+1)
	if n == 0 {
		return offsets
	}
	p := Workers()
	grain := defaultGrain(n, p)
	// Each chunk owns a k-word histogram, so more chunks than load
	// balancing needs just inflates the counts matrix and the scan over
	// it. Eight chunks per worker keeps stealing effective while the
	// matrix stays cache-resident.
	if maxChunks := 8 * p; (n+grain-1)/grain > maxChunks {
		grain = (n + maxChunks - 1) / maxChunks
	}
	chunks := (n + grain - 1) / grain
	if chunks <= 1 || n < partitionSeqCutoff || k > 1<<16 {
		// Sequential counting sort: for tiny inputs the launches dominate,
		// and for huge key ranges the per-chunk histogram copies would.
		for i := 0; i < n; i++ {
			offsets[key(src[i])+1]++
		}
		for d := 0; d < k; d++ {
			offsets[d+1] += offsets[d]
		}
		cursor := append([]int64(nil), offsets[:k]...)
		for i := 0; i < n; i++ {
			d := key(src[i])
			dst[cursor[d]] = src[i]
			cursor[d]++
		}
		return offsets
	}
	counts := make([]int64, chunks*k)
	col := make([]int64, chunks*k)
	ForRange(n, grain, func(lo, hi int) {
		h := counts[(lo/grain)*k : (lo/grain)*k+k]
		for i := lo; i < hi; i++ {
			h[key(src[i])]++
		}
	})
	ScanChunkCursors(counts, col, chunks, k, offsets)
	ForRange(n, grain, func(lo, hi int) {
		h := counts[(lo/grain)*k : (lo/grain)*k+k]
		for i := lo; i < hi; i++ {
			d := key(src[i])
			dst[h[d]] = src[i]
			h[d]++
		}
	})
	return offsets
}

// PartitionByBits is PartitionByKey specialized to uint64 words keyed by
// the bit field starting at shift: word x lands in group x>>shift, which
// the caller guarantees is below k. Dropping the key closure matters on
// the hottest path — the graph builders partition millions of packed arcs
// per build, and an indirect call per word in both the count and scatter
// loops is measurable — while everything else (stability, group offsets,
// zero atomics) matches PartitionByKey exactly.
func PartitionByBits(dst, src []uint64, k int, shift uint) []int64 {
	n := len(src)
	if len(dst) != n {
		panic("parallel: PartitionByBits dst length != src length")
	}
	if k < 1 {
		panic("parallel: PartitionByBits needs k >= 1")
	}
	offsets := make([]int64, k+1)
	if n == 0 {
		return offsets
	}
	p := Workers()
	grain := defaultGrain(n, p)
	if maxChunks := 8 * p; (n+grain-1)/grain > maxChunks {
		grain = (n + maxChunks - 1) / maxChunks
	}
	chunks := (n + grain - 1) / grain
	if chunks <= 1 || n < partitionSeqCutoff || k > 1<<16 {
		for i := 0; i < n; i++ {
			offsets[(src[i]>>shift)+1]++
		}
		for d := 0; d < k; d++ {
			offsets[d+1] += offsets[d]
		}
		cursor := append([]int64(nil), offsets[:k]...)
		for _, x := range src {
			d := x >> shift
			dst[cursor[d]] = x
			cursor[d]++
		}
		return offsets
	}
	counts := make([]int64, chunks*k)
	col := make([]int64, chunks*k)
	ForRange(n, grain, func(lo, hi int) {
		h := counts[(lo/grain)*k : (lo/grain)*k+k]
		for i := lo; i < hi; i++ {
			h[src[i]>>shift]++
		}
	})
	ScanChunkCursors(counts, col, chunks, k, offsets)
	ForRange(n, grain, func(lo, hi int) {
		h := counts[(lo/grain)*k : (lo/grain)*k+k]
		for i := lo; i < hi; i++ {
			x := src[i]
			d := x >> shift
			dst[h[d]] = x
			h[d]++
		}
	})
	return offsets
}

// keyed pairs a record with its sort key so the radix passes move both
// together and never re-derive keys (the key function runs exactly once per
// record).
type keyed[T any] struct {
	key uint64
	val T
}

// CountSortByKey returns a new slice holding recs stably sorted by
// key(rec) ascending: records with equal keys keep their input order. recs
// is left unmodified. maxKey must be an upper bound on every key; radix
// passes above it are skipped, so a tight bound (e.g. a packed
// (hi<<bits)|lo key of known width) directly reduces the pass count. Pass
// maxKey == 0 to have the bound computed from the data.
//
// It is the LSD radix sort of SortUint64 generalized to payload-carrying
// records: per 8-bit digit, one PartitionByKey-style count–scan–scatter
// pass with per-chunk histograms and owner-local cursors. No atomics on any
// hot loop.
func CountSortByKey[T any](recs []T, key func(T) uint64, maxKey uint64) []T {
	n := len(recs)
	out := make([]T, n)
	if n == 0 {
		return out
	}
	if maxKey == 0 {
		maxKey = Reduce(n, 0, uint64(0),
			func(i int) uint64 { return key(recs[i]) },
			func(a, b uint64) uint64 {
				if b > a {
					return b
				}
				return a
			})
	}
	if n < partitionSeqCutoff || maxKey == 0 {
		// Tiny input (or all keys equal): a stable comparison sort beats
		// the radix scratch allocations.
		copy(out, recs)
		sort.SliceStable(out, func(i, j int) bool { return key(out[i]) < key(out[j]) })
		return out
	}
	src := make([]keyed[T], n)
	For(n, 0, func(i int) { src[i] = keyed[T]{key(recs[i]), recs[i]} })
	dst := make([]keyed[T], n)
	p := Workers()
	grain := defaultGrain(n, p)
	if maxChunks := 8 * p; (n+grain-1)/grain > maxChunks {
		grain = (n + maxChunks - 1) / maxChunks
	}
	chunks := (n + grain - 1) / grain
	counts := make([]int64, chunks*256)
	col := make([]int64, chunks*256)
	for shift := uint(0); shift < 64; shift += 8 {
		if shift > 0 && maxKey>>shift == 0 {
			break
		}
		Fill(counts, 0)
		ForRange(n, grain, func(lo, hi int) {
			h := counts[(lo/grain)*256 : (lo/grain)*256+256]
			for i := lo; i < hi; i++ {
				h[(src[i].key>>shift)&0xff]++
			}
		})
		ScanChunkCursors(counts, col, chunks, 256, nil)
		ForRange(n, grain, func(lo, hi int) {
			h := counts[(lo/grain)*256 : (lo/grain)*256+256]
			for i := lo; i < hi; i++ {
				d := (src[i].key >> shift) & 0xff
				dst[h[d]] = src[i]
				h[d]++
			}
		})
		src, dst = dst, src
	}
	For(n, 0, func(i int) { out[i] = src[i].val })
	return out
}
