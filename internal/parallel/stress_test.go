package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestStressForOversubscribed runs parallel loops with the worker team
// deliberately mismatched to GOMAXPROCS in both directions — many more
// workers than processors (oversubscription) and more processors than
// workers — across several GOMAXPROCS settings. Each configuration checks
// that every index is visited exactly once and that the join is complete
// before ForRange returns. Under -race this shakes out ordering bugs in
// the chunk-counter scheduler that a matched configuration never hits.
func TestStressForOversubscribed(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped with -short")
	}
	origProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(origProcs)

	for _, procs := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(procs)
		for _, workers := range []int{1, 2, 7, 32, 128} {
			old := SetWorkers(workers)
			n := 1 << 15
			visits := make([]int32, n)
			var sum atomic.Int64
			ForRange(n, 64, func(lo, hi int) {
				var local int64
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
					local += int64(i)
				}
				sum.Add(local)
			})
			SetWorkers(old)
			want := int64(n) * int64(n-1) / 2
			if got := sum.Load(); got != want {
				t.Fatalf("procs=%d workers=%d: sum = %d, want %d", procs, workers, got, want)
			}
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("procs=%d workers=%d: index %d visited %d times", procs, workers, i, v)
				}
			}
		}
	}
}

// TestStressDoNestedForkJoin nests Do inside For under oversubscription,
// the shape VGC algorithms produce (a parallel loop whose body forks
// sub-tasks), and checks the counters balance.
func TestStressDoNestedForkJoin(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped with -short")
	}
	old := SetWorkers(32)
	defer SetWorkers(old)
	var total atomic.Int64
	For(256, 1, func(i int) {
		Do(
			func() { total.Add(int64(i)) },
			func() { total.Add(int64(i)) },
			func() { total.Add(1) },
		)
	})
	want := int64(2*(255*256/2) + 256)
	if got := total.Load(); got != want {
		t.Fatalf("total = %d, want %d", got, want)
	}
}
