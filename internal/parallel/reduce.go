package parallel

// Number constrains the primitive numeric types used by the reduction and
// scan helpers.
type Number interface {
	~int | ~int32 | ~int64 | ~uint | ~uint32 | ~uint64 | ~float32 | ~float64
}

// Reduce combines f(i) for i in [0,n) with the associative function combine,
// starting from the identity element id.
func Reduce[T any](n, grain int, id T, f func(i int) T, combine func(a, b T) T) T {
	if n <= 0 {
		return id
	}
	p := Workers()
	if grain <= 0 {
		grain = defaultGrain(n, p)
	}
	chunks := (n + grain - 1) / grain
	if chunks <= 1 {
		acc := id
		for i := 0; i < n; i++ {
			acc = combine(acc, f(i))
		}
		return acc
	}
	partial := make([]T, chunks)
	ForRange(n, grain, func(lo, hi int) {
		acc := id
		for i := lo; i < hi; i++ {
			acc = combine(acc, f(i))
		}
		partial[lo/grain] = acc
	})
	acc := id
	for _, v := range partial {
		acc = combine(acc, v)
	}
	return acc
}

// Sum returns the sum of f(i) over [0,n).
func Sum[T Number](n int, f func(i int) T) T {
	return Reduce(n, 0, T(0), f, func(a, b T) T { return a + b })
}

// Count returns how many i in [0,n) satisfy pred.
func Count(n int, pred func(i int) bool) int {
	return Sum(n, func(i int) int {
		if pred(i) {
			return 1
		}
		return 0
	})
}

// MaxIndex returns the index of a maximal f(i) over [0,n) (the smallest such
// index among chunk winners; ties across chunks resolve to the earliest
// chunk). n must be > 0.
func MaxIndex[T Number](n int, f func(i int) T) int {
	type iv struct {
		i int
		v T
	}
	best := Reduce(n, 0, iv{-1, 0}, func(i int) iv {
		return iv{i, f(i)}
	}, func(a, b iv) iv {
		if a.i < 0 {
			return b
		}
		if b.i < 0 {
			return a
		}
		if b.v > a.v || (b.v == a.v && b.i < a.i) {
			return b
		}
		return a
	})
	return best.i
}

// Min returns the minimum of f(i) over [0,n); n must be > 0.
func Min[T Number](n int, f func(i int) T) T {
	first := f(0)
	return Reduce(n, 0, first, func(i int) T { return f(i) },
		func(a, b T) T {
			if b < a {
				return b
			}
			return a
		})
}

// Max returns the maximum of f(i) over [0,n); n must be > 0.
func Max[T Number](n int, f func(i int) T) T {
	first := f(0)
	return Reduce(n, 0, first, func(i int) T { return f(i) },
		func(a, b T) T {
			if b > a {
				return b
			}
			return a
		})
}
