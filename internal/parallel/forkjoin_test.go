package parallel

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pasgal/internal/trace"
)

// panicToken is panicked by pointer so tests can assert the *identical*
// value crossed the scheduler, not a copy or a wrapper.
type panicToken struct{ site string }

// mustPanicWith runs fn and returns the recovered value, failing the test
// if fn does not panic.
func mustPanicWith(t *testing.T, fn func()) (val any) {
	t.Helper()
	defer func() { val = recover() }()
	fn()
	t.Fatal("expected panic, got none")
	return nil
}

// TestPanicPropagationMatrix pins the panic contract of the scheduler: the
// first panic value raised in any chunk or arm — inline on the caller, run
// by a pool worker, or nested forks deep — surfaces exactly once from the
// launching call, by identity, and only after the join is complete (no
// body still running when the panic reaches the caller).
func TestPanicPropagationMatrix(t *testing.T) {
	defer SetWorkers(SetWorkers(4))

	var inFlight atomic.Int32 // bodies currently executing
	enter := func() { inFlight.Add(1) }
	exit := func() { inFlight.Add(-1) }

	check := func(t *testing.T, tok *panicToken, launch func()) {
		t.Helper()
		got := mustPanicWith(t, launch)
		if got != tok {
			t.Fatalf("recovered %v (%T), want the original token %p", got, got, tok)
		}
		// The join must complete before the rethrow: nothing may still be
		// running the moment the panic reaches the caller.
		if n := inFlight.Load(); n != 0 {
			t.Fatalf("%d bodies still in flight after panic surfaced", n)
		}
	}

	t.Run("inline chunk", func(t *testing.T) {
		tok := &panicToken{"inline"}
		check(t, tok, func() {
			// grain >= n: single chunk, runs inline on the caller.
			ForRange(10, 100, func(lo, hi int) { enter(); defer exit(); panic(tok) })
		})
	})

	t.Run("multi-chunk loop", func(t *testing.T) {
		tok := &panicToken{"chunk"}
		check(t, tok, func() {
			// grain 1 over 1<<12 indices: many stealable chunks; whichever
			// participant (caller or pool worker) hits index 3000 panics.
			For(1<<12, 1, func(i int) {
				enter()
				defer exit()
				if i == 3000 {
					panic(tok)
				}
			})
		})
	})

	t.Run("do stealable arm", func(t *testing.T) {
		tok := &panicToken{"arm"}
		var other atomic.Bool
		check(t, tok, func() {
			Do(
				func() { enter(); defer exit(); other.Store(true) },
				func() { enter(); defer exit(); panic(tok) },
			)
		})
		if !other.Load() {
			t.Fatal("non-panicking arm did not run")
		}
	})

	t.Run("do inline arm", func(t *testing.T) {
		tok := &panicToken{"arm0"}
		var other atomic.Bool
		check(t, tok, func() {
			Do(
				func() { enter(); defer exit(); panic(tok) },
				func() { enter(); defer exit(); other.Store(true) },
			)
		})
		if !other.Load() {
			t.Fatal("sibling arm must still run to completion before the rethrow")
		}
	})

	t.Run("nested do arm", func(t *testing.T) {
		tok := &panicToken{"nested-do"}
		check(t, tok, func() {
			Do(
				func() { enter(); defer exit() },
				func() {
					Do(
						func() { enter(); defer exit() },
						func() { enter(); defer exit(); panic(tok) },
					)
				},
			)
		})
	})

	t.Run("loop inside do arm", func(t *testing.T) {
		tok := &panicToken{"do-for"}
		check(t, tok, func() {
			Do(
				func() { enter(); defer exit() },
				func() {
					For(512, 1, func(i int) {
						enter()
						defer exit()
						if i == 200 {
							panic(tok)
						}
					})
				},
			)
		})
	})

	t.Run("do inside loop chunk", func(t *testing.T) {
		tok := &panicToken{"for-do"}
		check(t, tok, func() {
			For(64, 1, func(i int) {
				enter()
				defer exit()
				if i == 40 {
					Do(func() {}, func() { panic(tok) })
				}
			})
		})
	})

	t.Run("first panic wins once", func(t *testing.T) {
		// Many chunks panic; exactly one token surfaces and it is one of
		// the thrown ones. (A single launch can only panic once, so the
		// "exactly once" half is that the value is never swallowed: the
		// launch must panic, checked by mustPanicWith.)
		toks := make([]*panicToken, 64)
		for i := range toks {
			toks[i] = &panicToken{fmt.Sprintf("multi-%d", i)}
		}
		got := mustPanicWith(t, func() {
			For(1<<10, 1, func(i int) {
				enter()
				defer exit()
				if i%16 == 0 {
					panic(toks[i/16])
				}
			})
		})
		found := false
		for _, tok := range toks {
			if got == tok {
				found = true
			}
		}
		if !found {
			t.Fatalf("recovered %v, not one of the thrown tokens", got)
		}
		if n := inFlight.Load(); n != 0 {
			t.Fatalf("%d bodies still in flight", n)
		}
	})
}

// TestStressSetWorkersDuringLoops hammers pool resizing concurrently with
// running loops and forks: resizes must never deadlock a join, drop a
// chunk, or double-run one. Run under -race in the stress tier.
func TestStressSetWorkersDuringLoops(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped with -short")
	}
	defer SetWorkers(SetWorkers(0)) // restore default at the end

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Resizer: cycle the pool through wildly different sizes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sizes := []int{1, 2, 3, 8, 32, 1, 16, 2}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			SetWorkers(sizes[i%len(sizes)])
			time.Sleep(50 * time.Microsecond)
		}
	}()

	// Launchers: two goroutines running loops + nested forks, each
	// verifying exactly-once execution of every index.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			const n = 1 << 12
			want := int64(n) * int64(n-1) / 2
			for iter := 0; ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				var sum atomic.Int64
				For(n, 7, func(i int) { sum.Add(int64(i)) })
				if got := sum.Load(); got != want {
					t.Errorf("g=%d iter=%d: sum=%d want %d (chunk dropped or doubled)", g, iter, got, want)
					return
				}
				var forked atomic.Int64
				Do(
					func() { For(128, 1, func(int) { forked.Add(1) }) },
					func() { forked.Add(1) },
					func() { Do(func() { forked.Add(1) }, func() { forked.Add(1) }) },
				)
				if got := forked.Load(); got != 131 {
					t.Errorf("g=%d iter=%d: forked=%d want 131", g, iter, got)
					return
				}
			}
		}(g)
	}

	time.Sleep(2 * time.Second)
	close(stop)
	wg.Wait()
}

// TestSchedStatsMatchTracer is the runtime half of the trace invariant:
// the counters SchedStats reports and the counters an installed
// trace.Tracer accumulates are two independent observers of the same
// events and must agree. Launch/fork/steal/inline/wake counts are bounded
// by the join and compared exactly; parks are recorded asynchronously by
// workers, so they are polled until the two observers converge.
func TestSchedStatsMatchTracer(t *testing.T) {
	defer SetWorkers(SetWorkers(4))

	tr := trace.New()
	prev := SetTracer(tr)
	defer SetTracer(prev)
	before := SchedStats()

	For(50000, 16, func(int) {})                                   // multi-chunk loop
	ForRange(10, 100, func(lo, hi int) {})                         // inline loop
	Do(func() {}, func() { For(256, 1, func(int) {}) }, func() {}) // fork + nested loop
	For(3, 1, func(int) {})                                        // more chunks than... exactly p-chunks shape

	after := SchedStats()
	exact := []struct {
		name string
		got  int64
		want int64
	}{
		{"loops", after.Loops - before.Loops, tr.CounterValue(trace.CtrLoops)},
		{"inline", after.Inline - before.Inline, tr.CounterValue(trace.CtrInlineLoops)},
		{"forks", after.Forks - before.Forks, tr.CounterValue(trace.CtrForks)},
		{"steals", after.Steals - before.Steals, tr.CounterValue(trace.CtrSteals)},
		{"wakes", after.Wakes - before.Wakes, tr.CounterValue(trace.CtrWakes)},
	}
	for _, c := range exact {
		if c.got != c.want {
			t.Errorf("%s: SchedStats delta %d != tracer %d", c.name, c.got, c.want)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		statParks := SchedStats().Parks - before.Parks
		traceParks := tr.CounterValue(trace.CtrParks)
		if statParks == traceParks {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("parks never converged: SchedStats delta %d, tracer %d", statParks, traceParks)
		}
		time.Sleep(time.Millisecond)
	}
}

// FuzzNestedForDo drives randomized nesting of Do forks over ForRange
// leaves against a deterministic sequential oracle: every input index must
// be transformed exactly once no matter how the work tree is shaped, how
// many workers run it, or how adversarial the grain is.
func FuzzNestedForDo(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(2), uint8(3), uint8(1))
	f.Add(uint64(42), uint8(3), uint8(4), uint8(1), uint8(0))
	f.Add(uint64(7), uint8(0), uint8(2), uint8(2), uint8(63))
	f.Add(uint64(99), uint8(5), uint8(7), uint8(4), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, depth, width, workers, grainSel uint8) {
		d := int(depth % 5)
		w := int(width%3) + 2
		p := int(workers%4) + 1
		grain := int(grainSel % 64) // 0 = auto
		defer SetWorkers(SetWorkers(p))

		rng := rand.New(rand.NewPCG(seed, 17))
		n := rng.IntN(3000) + 1
		in := make([]int64, n)
		for i := range in {
			in[i] = int64(rng.IntN(1000))
		}
		got := make([]int64, n)

		var rec func(lo, hi, d int)
		rec = func(lo, hi, d int) {
			if d == 0 || hi-lo <= w {
				ForRange(hi-lo, grain, func(clo, chi int) {
					for i := clo; i < chi; i++ {
						atomic.AddInt64(&got[lo+i], in[lo+i]*2+1)
					}
				})
				return
			}
			arms := make([]func(), w)
			for a := 0; a < w; a++ {
				alo := lo + (hi-lo)*a/w
				ahi := lo + (hi-lo)*(a+1)/w
				dd := d - 1
				arms[a] = func() { rec(alo, ahi, dd) }
			}
			Do(arms...)
		}
		rec(0, n, d)

		for i := range got {
			if want := in[i]*2 + 1; got[i] != want {
				t.Fatalf("seed=%d d=%d w=%d p=%d g=%d: got[%d]=%d, want %d (exactly-once violated)",
					seed, d, w, p, grain, i, got[i], want)
			}
		}
	})
}
