package parallel

import "testing"

// TestDefaultGrainChunkCounts pins the chunk counts the auto grain
// produces. The invariant under test is the fix for the old fixed 4096
// clamp: for any loop large enough to split at all, every worker sees at
// least ~8 chunks (so stealing can balance skew) and at most 64 chunks (so
// the per-chunk bookkeeping that Scan/Pack/Histogram allocate stays O(p)).
func TestDefaultGrainChunkCounts(t *testing.T) {
	chunksOf := func(n, g int) int { return (n + g - 1) / g }
	cases := []struct {
		name       string
		n, p       int
		wantGrain  int // -1 to skip the exact-grain check
		wantChunks int // -1 to skip the exact-chunk check
	}{
		{"tiny loop is one chunk each", 7, 4, 1, 7},
		{"n smaller than 8p floors at grain 1", 100, 16, 1, 100},
		{"exact 8 chunks per worker", 1 << 17, 8, 1 << 11, 64},
		{"single worker", 1 << 15, 1, 4096, 8},
		// The regression the fix targets: n=4M, p=96 under the old fixed
		// clamp gave grain 4096 → 1024 chunks ≈ 10/worker, but n=64M gave
		// grain 4096 → 16384 chunks of bookkeeping. Now the cap scales.
		{"huge loop caps at 64 chunks per worker", 64 << 20, 96, -1, -1},
		{"mid loop on many cores keeps 8 per worker", 4 << 20, 96, -1, -1},
		{"small-clamp regime still uses 4096", 1 << 20, 4, 4096, 256},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := defaultGrain(c.n, c.p)
			if g < 1 {
				t.Fatalf("grain %d < 1", g)
			}
			if c.wantGrain >= 0 && g != c.wantGrain {
				t.Errorf("defaultGrain(%d, %d) = %d, want %d", c.n, c.p, g, c.wantGrain)
			}
			ch := chunksOf(c.n, g)
			if c.wantChunks >= 0 && ch != c.wantChunks {
				t.Errorf("chunks = %d, want %d", ch, c.wantChunks)
			}
			// The structural invariant, for every case big enough to split:
			// chunks/worker in [8, 65] (the +1 absorbs ceil rounding).
			if c.n >= 8*c.p {
				perWorker := float64(ch) / float64(c.p)
				if perWorker < 7.9 || perWorker > 65 {
					t.Errorf("n=%d p=%d grain=%d: %.1f chunks/worker, want [8,64]",
						c.n, c.p, g, perWorker)
				}
			}
		})
	}
	// Sweep: the invariant must hold across the whole (n, p) plane, not
	// just the pinned rows.
	for _, p := range []int{1, 2, 3, 4, 8, 16, 48, 96, 192} {
		for n := 1; n <= 1<<28; n *= 7 {
			g := defaultGrain(n, p)
			if g < 1 {
				t.Fatalf("defaultGrain(%d,%d) = %d", n, p, g)
			}
			ch := chunksOf(n, g)
			if n >= 8*p {
				perWorker := float64(ch) / float64(p)
				if perWorker < 7.9 || perWorker > 65 {
					t.Errorf("n=%d p=%d grain=%d: %.1f chunks/worker out of [8,64]",
						n, p, g, perWorker)
				}
			}
		}
	}
	if g := defaultGrain(10, 0); g < 1 {
		t.Fatalf("p=0 must not divide by zero, got %d", g)
	}
}

// TestDefaultGrainOldClampRegression documents the concrete failure the
// re-derived clamp fixes: the old unconditional min(…, 4096) made chunk
// counts grow with n (bookkeeping) while still starving high worker counts
// on mid-size loops. The new clamp keeps both sides bounded.
func TestDefaultGrainOldClampRegression(t *testing.T) {
	// 64M iterations on 8 workers: old clamp → 16384 chunks (2048/worker of
	// per-chunk bookkeeping); new clamp → at most 64/worker.
	n, p := 64<<20, 8
	g := defaultGrain(n, p)
	if ch := (n + g - 1) / g; ch > 64*p {
		t.Fatalf("n=%d p=%d: %d chunks, want <= %d", n, p, ch, 64*p)
	}
}
