package parallel

import "sync/atomic"

// Scheduling counters. These are package-global (the scheduler is), cheap
// (one uncontended-in-the-common-case atomic add per event), and exposed
// through SchedStats for tests, pasgal-bench summaries, and the trace
// invariant check.
var (
	statLoops  atomic.Int64 // multi-chunk loop + Do launches
	statInline atomic.Int64 // loops that ran inline (single chunk)
	statForks  atomic.Int64 // helper opportunities published (k-1 per loop, arms per Do)
	statSteals atomic.Int64 // chunk-range halves + Do arms claimed by non-owners
	statParks  atomic.Int64 // workers that blocked on the idle condvar
	statWakes  atomic.Int64 // park wakeups signalled by publishers
	statSpawns atomic.Int64 // worker goroutines started (pool start + resizes)
)

// SchedCounts is a snapshot of the scheduler's cumulative counters.
type SchedCounts struct {
	Loops  int64 // parallel launches (multi-chunk loops and Do forks)
	Inline int64 // loops that fit one chunk and ran on the caller
	Forks  int64 // helper slots / fork arms made available to the pool
	Steals int64 // successful steals (loop range halves and Do arms)
	Parks  int64 // times an idle worker blocked
	Wakes  int64 // wakeups issued to parked workers
	Spawns int64 // worker goroutines ever started
}

// SchedStats returns cumulative scheduling counters since process start (or
// the last ResetSchedStats). Loops/Inline/Forks/Steals are exact once every
// launch that contributed to them has joined; Parks/Wakes/Spawns are
// asynchronous (workers park on their own schedule) and may trail briefly.
func SchedStats() SchedCounts {
	return SchedCounts{
		Loops:  statLoops.Load(),
		Inline: statInline.Load(),
		Forks:  statForks.Load(),
		Steals: statSteals.Load(),
		Parks:  statParks.Load(),
		Wakes:  statWakes.Load(),
		Spawns: statSpawns.Load(),
	}
}

// ResetSchedStats zeroes the scheduling counters (for tests and benchmark
// harnesses that want per-phase deltas).
func ResetSchedStats() {
	statLoops.Store(0)
	statInline.Store(0)
	statForks.Store(0)
	statSteals.Store(0)
	statParks.Store(0)
	statWakes.Store(0)
	statSpawns.Store(0)
}
