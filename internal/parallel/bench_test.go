package parallel

import (
	"fmt"
	"math/rand/v2"
	"testing"
)

func BenchmarkFor(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 16, 1 << 20} {
		b.Run(sizeName(n), func(b *testing.B) {
			dst := make([]int64, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				For(n, 0, func(j int) { dst[j] = int64(j) })
			}
		})
	}
}

func BenchmarkScan(b *testing.B) {
	for _, n := range []int{1 << 16, 1 << 20} {
		b.Run(sizeName(n), func(b *testing.B) {
			src := make([]int64, n)
			for i := range src {
				src[i] = int64(i & 7)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Scan(src)
			}
		})
	}
}

func BenchmarkPackIndex(b *testing.B) {
	n := 1 << 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PackIndex(n, func(j int) bool { return j&7 == 0 })
	}
}

func BenchmarkSortFunc(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	n := 1 << 18
	orig := make([]uint64, n)
	for i := range orig {
		orig[i] = rng.Uint64()
	}
	s := make([]uint64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(s, orig)
		SortFunc(s, func(a, c uint64) bool { return a < c })
	}
}

func BenchmarkSortUint64Radix(b *testing.B) {
	rng := rand.New(rand.NewPCG(2, 2))
	n := 1 << 18
	orig := make([]uint64, n)
	for i := range orig {
		orig[i] = rng.Uint64()
	}
	s := make([]uint64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(s, orig)
		SortUint64(s)
	}
}

func BenchmarkHistogram(b *testing.B) {
	n := 1 << 20
	keys := make([]uint32, n)
	for i := range keys {
		keys[i] = uint32(i % 256)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Histogram(keys, 256)
	}
}

// BenchmarkLaunchOverhead measures the fixed cost of launching one small
// parallel loop at different worker-team sizes — the small-frontier regime
// of large-diameter graphs, where a round's loop has little work and the
// launch cost itself decides throughput. With the persistent pool the cost
// must stay roughly flat in p (publish + wake, no spawns); the old
// spawn-per-launch runtime grew linearly in p.
func BenchmarkLaunchOverhead(b *testing.B) {
	const n = 256 // small loop: a few chunks, dominated by launch cost
	for _, p := range []int{1, 8, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			defer SetWorkers(SetWorkers(p))
			dst := make([]int64, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				For(n, 16, func(j int) { dst[j]++ })
			}
		})
	}
}

// BenchmarkDoOverhead measures the fixed cost of a binary fork-join.
func BenchmarkDoOverhead(b *testing.B) {
	for _, p := range []int{1, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			defer SetWorkers(SetWorkers(p))
			var x, y int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Do(func() { x++ }, func() { y++ })
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return "1M"
	case n >= 1<<16:
		return "64K"
	default:
		return "1K"
	}
}
