package parallel

import (
	"math/rand/v2"
	"testing"
)

func BenchmarkFor(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 16, 1 << 20} {
		b.Run(sizeName(n), func(b *testing.B) {
			dst := make([]int64, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				For(n, 0, func(j int) { dst[j] = int64(j) })
			}
		})
	}
}

func BenchmarkScan(b *testing.B) {
	for _, n := range []int{1 << 16, 1 << 20} {
		b.Run(sizeName(n), func(b *testing.B) {
			src := make([]int64, n)
			for i := range src {
				src[i] = int64(i & 7)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Scan(src)
			}
		})
	}
}

func BenchmarkPackIndex(b *testing.B) {
	n := 1 << 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PackIndex(n, func(j int) bool { return j&7 == 0 })
	}
}

func BenchmarkSortFunc(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	n := 1 << 18
	orig := make([]uint64, n)
	for i := range orig {
		orig[i] = rng.Uint64()
	}
	s := make([]uint64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(s, orig)
		SortFunc(s, func(a, c uint64) bool { return a < c })
	}
}

func BenchmarkSortUint64Radix(b *testing.B) {
	rng := rand.New(rand.NewPCG(2, 2))
	n := 1 << 18
	orig := make([]uint64, n)
	for i := range orig {
		orig[i] = rng.Uint64()
	}
	s := make([]uint64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(s, orig)
		SortUint64(s)
	}
}

func BenchmarkHistogram(b *testing.B) {
	n := 1 << 20
	keys := make([]uint32, n)
	for i := range keys {
		keys[i] = uint32(i % 256)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Histogram(keys, 256)
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return "1M"
	case n >= 1<<16:
		return "64K"
	default:
		return "1K"
	}
}
