package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func record(t *testing.T) *Tracer {
	t.Helper()
	tr := New()
	tr.Round("bfs", 1, 1)
	tr.Round("bfs", 2, 16)
	tr.DirectionSwitch("bfs", 3)
	tr.Round("bfs", 3, 900)
	tr.Phase("scc", 1, 12)
	tr.Round("scc", 1, 4)
	tr.BagResize(1, 1024)
	return tr
}

func TestWriteRoundLog(t *testing.T) {
	var buf bytes.Buffer
	if err := record(t).WriteRoundLog(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"7 events (0 dropped)",
		"rounds=4", "bottom_up=1", "phases=1", "bag_resizes=1",
		"round 2: frontier=16",
		"direction switch -> bottom-up",
		"phase 1 (detail=12)",
		"grew to level 1 (1024 slots)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("round log missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := record(t).WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 7 {
		t.Fatalf("got %d JSONL lines, want 7", len(lines))
	}
	var first struct {
		TSNs int64  `json:"ts_ns"`
		Kind string `json:"kind"`
		Algo string `json:"algo"`
		A    int64  `json:"a"`
		B    int64  `json:"b"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if first.Kind != "round" || first.Algo != "bfs" || first.A != 1 || first.B != 1 {
		t.Fatalf("unexpected first event: %+v", first)
	}
	for i, l := range lines {
		if !json.Valid([]byte(l)) {
			t.Fatalf("line %d is not valid JSON: %s", i, l)
		}
	}
}

// TestWriteChromeTrace validates the trace_event output structurally: it
// must parse as JSON, every event needs a phase and in-range timestamps,
// and round slices must carry durations that stay inside the recording.
func TestWriteChromeTrace(t *testing.T) {
	tr := record(t)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	// 7 events + 2 thread_name metadata records (bfs, scc, hashbag = 3).
	if len(parsed.TraceEvents) != 7+3 {
		t.Fatalf("got %d trace events, want 10", len(parsed.TraceEvents))
	}
	rounds, metas := 0, 0
	for _, ev := range parsed.TraceEvents {
		switch ev.Ph {
		case "X":
			rounds++
			if ev.Dur <= 0 {
				t.Errorf("round slice %q has non-positive dur %v", ev.Name, ev.Dur)
			}
			if _, ok := ev.Args["frontier"]; !ok {
				t.Errorf("round slice %q missing frontier arg", ev.Name)
			}
		case "i":
			if ev.Args == nil {
				t.Errorf("instant event %q missing args", ev.Name)
			}
		case "M":
			metas++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
		if ev.PID != 1 {
			t.Errorf("event %q pid = %d, want 1", ev.Name, ev.PID)
		}
	}
	if rounds != 4 {
		t.Errorf("got %d round slices, want 4", rounds)
	}
	if metas != 3 {
		t.Errorf("got %d metadata events, want 3", metas)
	}
}

// TestChromeTraceEmpty: an empty recording must still produce valid JSON
// with an empty (not null) traceEvents array.
func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if string(parsed["traceEvents"]) != "[]" {
		t.Fatalf("empty trace events = %s, want []", parsed["traceEvents"])
	}
}
