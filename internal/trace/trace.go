// Package trace is the library's structured tracing layer: a zero-
// dependency, low-overhead recorder for the per-round behavior the paper's
// evaluation rests on — frontier growth under VGC, direction-optimization
// switches, SCC/SSSP phase structure, hash-bag resizes, and fork-join
// scheduling volume.
//
// A *Tracer is nil-safe: every method on a nil receiver is a no-op, so
// algorithm code threads the tracer unconditionally (via core.Options) and
// the disabled path costs one pointer test. Counters are plain atomics;
// discrete events (rounds, phases, resizes) go into a bounded ring under a
// mutex — events are per-round, not per-edge, so the lock is cold.
//
// Three sinks render a recording: WriteRoundLog (human-readable),
// WriteJSONL (one JSON object per event), and WriteChromeTrace (the Chrome
// trace_event format, loadable in chrome://tracing or https://ui.perfetto.dev).
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counter identifies one cumulative statistic.
type Counter int

// The counters. Round/phase/direction counts mirror core.Metrics (the
// trace invariant tests assert the two observability paths agree); the bag
// and scheduler counters have no Metrics equivalent and exist only here.
const (
	CtrRounds      Counter = iota // frontier extractions (= round events)
	CtrBottomUp                   // direction-optimized (bottom-up) rounds
	CtrPhases                     // outer phases (SCC peeling, SSSP θ steps)
	CtrBagResizes                 // hash-bag chunk advances (growth events)
	CtrBagRetries                 // hash-bag insert probe retries
	CtrLoops                      // parallel loop launches (join barriers)
	CtrForks                      // helper slots / fork arms published for stealing
	CtrInlineLoops                // loops that fit one chunk and ran inline
	CtrSteals                     // loop range halves and Do arms claimed by non-owners
	CtrParks                      // idle pool workers that blocked
	CtrWakes                      // wakeups issued to parked workers
	CtrCancels                    // runs stopped by cancellation or deadline
	CtrLaneScans                  // MS-BFS edge scans (each advances up to 64 lanes)
	numCounters
)

// counterNames must match the Counter constants in order.
var counterNames = [numCounters]string{
	"rounds", "bottom_up", "phases", "bag_resizes", "bag_retries",
	"loops", "forks", "inline_loops", "steals", "parks", "wakes",
	"cancels", "lane_scans",
}

// Name returns the counter's snake_case name as used in the sinks.
func (c Counter) Name() string {
	if c < 0 || c >= numCounters {
		return "unknown"
	}
	return counterNames[c]
}

// Kind classifies an Event.
type Kind uint8

// The event kinds.
const (
	KindRound     Kind = iota // one frontier extraction
	KindDirSwitch             // a round ran bottom-up (direction-optimized)
	KindPhase                 // one outer phase boundary
	KindResize                // a hash bag advanced to a larger chunk
	KindCancel                // a run stopped early (cancellation/deadline)
)

// String names the kind as used in the sinks.
func (k Kind) String() string {
	switch k {
	case KindRound:
		return "round"
	case KindDirSwitch:
		return "dir_switch"
	case KindPhase:
		return "phase"
	case KindResize:
		return "resize"
	case KindCancel:
		return "cancel"
	}
	return "unknown"
}

// Event is one recorded occurrence. TS is nanoseconds since the tracer was
// created. The meaning of A and B depends on Kind:
//
//	KindRound:     A = round index (1-based), B = frontier size
//	KindDirSwitch: A = round index the switch applies to, B unused
//	KindPhase:     A = phase index (1-based), B = caller detail (or -1)
//	KindResize:    A = new chunk level, B = new chunk slot count
//	KindCancel:    A = rounds completed when the run stopped, B unused
type Event struct {
	TS   int64
	Kind Kind
	Algo string
	A, B int64
}

// DefaultEventCap bounds the event ring: recording stops (and Dropped
// counts) past this many events unless New was given a larger cap. 64Ki
// events * 48ish bytes is a few MiB — enough for every workload in the
// registry at full scale.
const DefaultEventCap = 1 << 16

// Tracer records events and counters. Create with New; the zero value and
// the nil pointer are both safe no-op recorders (nil is the normal
// "tracing disabled" representation).
type Tracer struct {
	start    time.Time
	cap      int
	counters [numCounters]atomic.Int64
	dropped  atomic.Int64

	mu     sync.Mutex
	events []Event
}

// New returns a Tracer with the default event capacity.
func New() *Tracer { return NewWithCap(DefaultEventCap) }

// NewWithCap returns a Tracer holding at most eventCap events; older
// events are kept, later ones dropped (and counted), so the recording is a
// faithful prefix. eventCap <= 0 selects DefaultEventCap.
func NewWithCap(eventCap int) *Tracer {
	if eventCap <= 0 {
		eventCap = DefaultEventCap
	}
	return &Tracer{start: time.Now(), cap: eventCap}
}

// enabled reports whether t records anything.
func (t *Tracer) enabled() bool { return t != nil }

func (t *Tracer) emit(ev Event) {
	ev.TS = int64(time.Since(t.start))
	t.mu.Lock()
	if len(t.events) < t.cap {
		t.events = append(t.events, ev)
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	t.dropped.Add(1)
}

// Round records one frontier extraction: round is the 1-based round index
// within the algo's run, frontier the number of extracted entries.
func (t *Tracer) Round(algo string, round, frontier int64) {
	if t == nil {
		return
	}
	t.counters[CtrRounds].Add(1)
	t.emit(Event{Kind: KindRound, Algo: algo, A: round, B: frontier})
}

// DirectionSwitch records that the given round ran bottom-up.
func (t *Tracer) DirectionSwitch(algo string, round int64) {
	if t == nil {
		return
	}
	t.counters[CtrBottomUp].Add(1)
	t.emit(Event{Kind: KindDirSwitch, Algo: algo, A: round})
}

// Phase records one outer phase boundary (SCC peeling round, SSSP θ step).
// detail is caller-defined (-1 when unused).
func (t *Tracer) Phase(algo string, phase, detail int64) {
	if t == nil {
		return
	}
	t.counters[CtrPhases].Add(1)
	t.emit(Event{Kind: KindPhase, Algo: algo, A: phase, B: detail})
}

// Cancel records a run of algo stopping early at a cancellation or
// deadline check, after completing `rounds` rounds.
func (t *Tracer) Cancel(algo string, rounds int64) {
	if t == nil {
		return
	}
	t.counters[CtrCancels].Add(1)
	t.emit(Event{Kind: KindCancel, Algo: algo, A: rounds})
}

// LaneScans adds n edge scans performed by the batched multi-source (MS-BFS)
// lane engine. Each scan is one adjacency-list visit that advances up to 64
// traversals at once, so CtrLaneScans/CtrRounds read against a looped
// single-source run's EdgesVisited shows the batch's scan sharing (counter
// only; lane scans are far too frequent for per-event recording).
func (t *Tracer) LaneScans(n int64) {
	if t == nil || n == 0 {
		return
	}
	t.counters[CtrLaneScans].Add(n)
}

// BagResize records a hash bag advancing to chunk level `level` of `slots`
// slots.
func (t *Tracer) BagResize(level, slots int64) {
	if t == nil {
		return
	}
	t.counters[CtrBagResizes].Add(1)
	t.emit(Event{Kind: KindResize, Algo: "hashbag", A: level, B: slots})
}

// BagRetries adds n hash-bag insert probe retries (counter only; retries
// are far too frequent for per-event recording).
func (t *Tracer) BagRetries(n int64) {
	if t == nil || n == 0 {
		return
	}
	t.counters[CtrBagRetries].Add(n)
}

// Loop records one parallel launch that published `forks` helper slots (or
// Do arms) over `chunks` chunks (counters only).
func (t *Tracer) Loop(forks, chunks int64) {
	if t == nil {
		return
	}
	t.counters[CtrLoops].Add(1)
	t.counters[CtrForks].Add(forks)
	_ = chunks
}

// LoopInline records a parallel loop that fit in one chunk and ran inline
// (counter only).
func (t *Tracer) LoopInline() {
	if t == nil {
		return
	}
	t.counters[CtrInlineLoops].Add(1)
}

// Steal records one successful steal: a loop chunk-range half or a Do arm
// claimed by a participant other than its owner (counter only).
func (t *Tracer) Steal() {
	if t == nil {
		return
	}
	t.counters[CtrSteals].Add(1)
}

// Park records one pool worker blocking on the idle wait (counter only).
func (t *Tracer) Park() {
	if t == nil {
		return
	}
	t.counters[CtrParks].Add(1)
}

// Wake records n wakeups issued to parked workers (counter only).
func (t *Tracer) Wake(n int64) {
	if t == nil {
		return
	}
	t.counters[CtrWakes].Add(n)
}

// CounterValue returns the current value of counter c (0 on a nil tracer).
func (t *Tracer) CounterValue(c Counter) int64 {
	if t == nil || c < 0 || c >= numCounters {
		return 0
	}
	return t.counters[c].Load()
}

// Dropped returns how many events did not fit the ring.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Events returns a copy of the recorded events in emission order (nil on a
// nil tracer).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// EventsFor returns the recorded events of one algo label, in order.
func (t *Tracer) EventsFor(algo string) []Event {
	var out []Event
	for _, ev := range t.Events() {
		if ev.Algo == algo {
			out = append(out, ev)
		}
	}
	return out
}

// Reset clears events, counters, and the drop count, and restarts the
// clock. Not safe to call concurrently with recording.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = t.events[:0]
	t.mu.Unlock()
	for i := range t.counters {
		t.counters[i].Store(0)
	}
	t.dropped.Store(0)
	t.start = time.Now()
}
