package trace

import (
	"testing"
)

// TestNilTracerIsSafe: every recording and query method must be a no-op on
// a nil receiver — that is the contract the whole library relies on when
// tracing is disabled.
func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Round("bfs", 1, 10)
	tr.DirectionSwitch("bfs", 1)
	tr.Phase("scc", 1, -1)
	tr.BagResize(2, 2048)
	tr.BagRetries(5)
	tr.Loop(4, 32)
	tr.LoopInline()
	tr.Steal()
	tr.Park()
	tr.Wake(3)
	tr.Reset()
	if got := tr.Events(); got != nil {
		t.Fatalf("nil tracer Events() = %v, want nil", got)
	}
	if got := tr.CounterValue(CtrRounds); got != 0 {
		t.Fatalf("nil tracer counter = %d, want 0", got)
	}
	if tr.Dropped() != 0 {
		t.Fatal("nil tracer reported drops")
	}
	s := tr.Snapshot()
	if s.Events != 0 || len(s.Counter) != 0 {
		t.Fatalf("nil tracer snapshot = %+v, want empty", s)
	}
}

func TestCountersAndEvents(t *testing.T) {
	tr := New()
	tr.Round("bfs", 1, 1)
	tr.Round("bfs", 2, 8)
	tr.DirectionSwitch("bfs", 2)
	tr.Phase("scc", 1, 42)
	tr.BagResize(1, 1024)
	tr.BagRetries(7)
	tr.BagRetries(0) // must not count
	tr.Loop(4, 32)
	tr.Loop(2, 2)
	tr.LoopInline()
	tr.Steal()
	tr.Steal()
	tr.Park()
	tr.Wake(2)
	tr.Wake(1)

	want := map[Counter]int64{
		CtrRounds: 2, CtrBottomUp: 1, CtrPhases: 1, CtrBagResizes: 1,
		CtrBagRetries: 7, CtrLoops: 2, CtrForks: 6, CtrInlineLoops: 1,
		CtrSteals: 2, CtrParks: 1, CtrWakes: 3,
	}
	for c, v := range want {
		if got := tr.CounterValue(c); got != v {
			t.Errorf("counter %s = %d, want %d", c.Name(), got, v)
		}
	}

	evs := tr.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5 (counter-only calls must not emit)", len(evs))
	}
	// Emission order and monotone timestamps.
	wantKinds := []Kind{KindRound, KindRound, KindDirSwitch, KindPhase, KindResize}
	for i, ev := range evs {
		if ev.Kind != wantKinds[i] {
			t.Fatalf("event %d kind = %v, want %v", i, ev.Kind, wantKinds[i])
		}
		if i > 0 && ev.TS < evs[i-1].TS {
			t.Fatalf("timestamps not monotone at %d", i)
		}
	}
	if evs[1].A != 2 || evs[1].B != 8 {
		t.Fatalf("round event payload = (%d,%d), want (2,8)", evs[1].A, evs[1].B)
	}

	bfs := tr.EventsFor("bfs")
	if len(bfs) != 3 {
		t.Fatalf("EventsFor(bfs) = %d events, want 3", len(bfs))
	}
}

func TestRingCapAndDrop(t *testing.T) {
	tr := NewWithCap(4)
	for i := 0; i < 10; i++ {
		tr.Round("bfs", int64(i+1), 1)
	}
	if got := len(tr.Events()); got != 4 {
		t.Fatalf("ring holds %d events, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	// The kept events are the prefix.
	for i, ev := range tr.Events() {
		if ev.A != int64(i+1) {
			t.Fatalf("event %d round = %d, want %d (prefix must be kept)", i, ev.A, i+1)
		}
	}
	// Counters keep counting past the ring cap.
	if got := tr.CounterValue(CtrRounds); got != 10 {
		t.Fatalf("rounds counter = %d, want 10", got)
	}
}

func TestReset(t *testing.T) {
	tr := New()
	tr.Round("bfs", 1, 1)
	tr.BagRetries(3)
	tr.Reset()
	if len(tr.Events()) != 0 || tr.CounterValue(CtrRounds) != 0 ||
		tr.CounterValue(CtrBagRetries) != 0 || tr.Dropped() != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := NewWithCap(1 << 12)
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				tr.Round("bfs", int64(i), int64(i))
				tr.BagRetries(1)
				tr.Loop(2, 4)
			}
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if got := tr.CounterValue(CtrRounds); got != 4000 {
		t.Fatalf("rounds = %d, want 4000", got)
	}
	if got := len(tr.Events()) + int(tr.Dropped()); got != 4000 {
		t.Fatalf("events+dropped = %d, want 4000", got)
	}
}
