package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Summary is the counter snapshot embedded in sink headers.
type Summary struct {
	Events  int              `json:"events"`
	Dropped int64            `json:"dropped"`
	Counter map[string]int64 `json:"counters"`
}

// Snapshot returns the current Summary (zero value on a nil tracer).
func (t *Tracer) Snapshot() Summary {
	s := Summary{Counter: map[string]int64{}}
	if t == nil {
		return s
	}
	s.Events = len(t.Events())
	s.Dropped = t.Dropped()
	for c := Counter(0); c < numCounters; c++ {
		s.Counter[c.Name()] = t.CounterValue(c)
	}
	return s
}

// WriteRoundLog writes the recording as a human-readable per-round log: a
// counter header, then one line per event in emission order.
func (t *Tracer) WriteRoundLog(w io.Writer) error {
	bw := bufio.NewWriter(w)
	s := t.Snapshot()
	fmt.Fprintf(bw, "# pasgal trace: %d events (%d dropped)\n", s.Events, s.Dropped)
	fmt.Fprintf(bw, "# counters:")
	for c := Counter(0); c < numCounters; c++ {
		fmt.Fprintf(bw, " %s=%d", c.Name(), s.Counter[c.Name()])
	}
	fmt.Fprintln(bw)
	for _, ev := range t.Events() {
		ts := float64(ev.TS) / 1e9
		switch ev.Kind {
		case KindRound:
			fmt.Fprintf(bw, "+%.6fs %-12s round %d: frontier=%d\n", ts, ev.Algo, ev.A, ev.B)
		case KindDirSwitch:
			fmt.Fprintf(bw, "+%.6fs %-12s round %d: direction switch -> bottom-up\n", ts, ev.Algo, ev.A)
		case KindPhase:
			fmt.Fprintf(bw, "+%.6fs %-12s phase %d (detail=%d)\n", ts, ev.Algo, ev.A, ev.B)
		case KindResize:
			fmt.Fprintf(bw, "+%.6fs %-12s grew to level %d (%d slots)\n", ts, ev.Algo, ev.A, ev.B)
		case KindCancel:
			fmt.Fprintf(bw, "+%.6fs %-12s canceled after %d rounds\n", ts, ev.Algo, ev.A)
		}
	}
	return bw.Flush()
}

// jsonlEvent is the JSONL wire form of an Event.
type jsonlEvent struct {
	TSNs int64  `json:"ts_ns"`
	Kind string `json:"kind"`
	Algo string `json:"algo"`
	A    int64  `json:"a"`
	B    int64  `json:"b"`
}

// WriteJSONL writes one JSON object per event (the machine-readable event
// stream). Field semantics follow Event's documentation.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range t.Events() {
		if err := enc.Encode(jsonlEvent{
			TSNs: ev.TS, Kind: ev.Kind.String(), Algo: ev.Algo, A: ev.A, B: ev.B,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is one entry of the Chrome trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level Chrome trace JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	OtherData       Summary       `json:"otherData"`
}

// WriteChromeTrace writes the recording in the Chrome trace_event JSON
// format, loadable in chrome://tracing or Perfetto. Each algo label
// becomes a track (tid); a round renders as a complete ("X") slice lasting
// until the algo's next round or phase (rounds are emitted at extraction
// time, so the gap to the next extraction is the round's duration);
// direction switches, phases, and bag resizes render as instant events.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()

	// Stable track ids in order of first appearance.
	tids := map[string]int{}
	tidOf := func(algo string) int {
		if id, ok := tids[algo]; ok {
			return id
		}
		id := len(tids) + 1
		tids[algo] = id
		return id
	}

	// For round durations: the next round/phase TS per algo, per event.
	endOf := make([]int64, len(events))
	lastTS := int64(0)
	for _, ev := range events {
		if ev.TS > lastTS {
			lastTS = ev.TS
		}
	}
	nextTS := map[string]int64{}
	for i := len(events) - 1; i >= 0; i-- {
		ev := events[i]
		if ev.Kind != KindRound {
			continue
		}
		if ts, ok := nextTS[ev.Algo]; ok {
			endOf[i] = ts
		} else {
			endOf[i] = lastTS
		}
		nextTS[ev.Algo] = ev.TS
	}

	out := chromeTrace{DisplayTimeUnit: "ms", OtherData: t.Snapshot(),
		TraceEvents: []chromeEvent{}}
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	for i, ev := range events {
		tid := tidOf(ev.Algo)
		switch ev.Kind {
		case KindRound:
			dur := us(endOf[i] - ev.TS)
			if dur <= 0 {
				dur = 0.001 // keep zero-length slices visible
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: fmt.Sprintf("%s round %d", ev.Algo, ev.A), Cat: "round",
				Ph: "X", TS: us(ev.TS), Dur: dur, PID: 1, TID: tid,
				Args: map[string]any{"round": ev.A, "frontier": ev.B},
			})
		case KindDirSwitch:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "bottom-up", Cat: "dir_switch", Ph: "i", S: "t",
				TS: us(ev.TS), PID: 1, TID: tid,
				Args: map[string]any{"round": ev.A},
			})
		case KindPhase:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: fmt.Sprintf("%s phase %d", ev.Algo, ev.A), Cat: "phase",
				Ph: "i", S: "t", TS: us(ev.TS), PID: 1, TID: tid,
				Args: map[string]any{"phase": ev.A, "detail": ev.B},
			})
		case KindResize:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "bag resize", Cat: "resize", Ph: "i", S: "t",
				TS: us(ev.TS), PID: 1, TID: tid,
				Args: map[string]any{"level": ev.A, "slots": ev.B},
			})
		case KindCancel:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "canceled", Cat: "cancel", Ph: "i", S: "t",
				TS: us(ev.TS), PID: 1, TID: tid,
				Args: map[string]any{"rounds": ev.A},
			})
		}
	}
	// Thread-name metadata so Perfetto labels the tracks.
	for algo, tid := range tids {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": algo},
		})
	}

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(out); err != nil {
		return err
	}
	return bw.Flush()
}
