// Graph mining with the peeling extensions: k-core decomposition, densest
// subgraph, and bridge detection on a social network — the "k-core and
// other peeling algorithms" extension the paper's conclusion proposes,
// built on the same VGC + hash-bag machinery as the core algorithms.
//
//	go run ./examples/graphmining
package main

import (
	"fmt"
	"time"

	"pasgal"
)

func main() {
	// An undirected social network with a heavy-tailed degree profile.
	g := pasgal.GenerateRMAT(15, 12, false, 2026)
	fmt.Println(g)

	// k-core decomposition: peel away the sparse fringe to find the
	// engagement ladder.
	start := time.Now()
	core, degeneracy, met, _ := pasgal.KCore(g, pasgal.Options{})
	fmt.Printf("k-core in %s: degeneracy %d, %d peeling rounds\n",
		time.Since(start).Round(time.Millisecond), degeneracy, met.Rounds)
	levels := make([]int, degeneracy+1)
	for _, c := range core {
		levels[c]++
	}
	fmt.Printf("coreness spread: %d vertices at 0, %d in the top core (k=%d)\n",
		levels[0], levels[degeneracy], degeneracy)

	// Densest subgraph (Charikar 2-approximation via the peeling order):
	// the community with the highest internal edge density.
	verts, density, _, _ := pasgal.DensestSubgraph(g, pasgal.Options{})
	fmt.Printf("densest subgraph: %d vertices at density %.2f (graph-wide %.2f)\n",
		len(verts), density, float64(g.UndirectedM())/float64(g.N))
	sub, _ := pasgal.InducedSubgraph(g, verts)
	fmt.Printf("  induced: %v\n", sub)

	// Bridges: single points of failure in the network fabric.
	flags, nBridges, _, _ := pasgal.Bridges(g, pasgal.Options{})
	fmt.Printf("bridges: %d of %d edges\n", nBridges, g.UndirectedM())
	_ = flags

	// Cross-check the peel against the sequential Matula–Beck reference.
	seqCore, seqDeg := pasgal.SequentialKCore(g)
	if seqDeg != degeneracy {
		fmt.Printf("MISMATCH: sequential degeneracy %d\n", seqDeg)
		return
	}
	for v := range core {
		if core[v] != seqCore[v] {
			fmt.Printf("MISMATCH at vertex %d\n", v)
			return
		}
	}
	fmt.Println("verified against sequential Matula–Beck")
}
