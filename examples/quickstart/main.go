// Quickstart: build a graph, run all four PASGAL algorithms, and read the
// metrics. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"pasgal"
)

func main() {
	// A small directed graph from an explicit edge list: two cycles
	// bridged by a one-way edge, plus a tail.
	edges := []pasgal.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, // cycle A
		{U: 2, V: 3},                             // bridge A -> B
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3}, // cycle B
		{U: 5, V: 6}, {U: 6, V: 7}, // tail
	}
	g := pasgal.NewGraph(8, edges, true, pasgal.BuildOptions{})
	fmt.Println(g)

	// BFS: hop distances from vertex 0.
	dist, met, _ := pasgal.BFS(g, 0, pasgal.Options{})
	fmt.Printf("BFS distances from 0: %v  (rounds=%d)\n", dist, met.Rounds)

	// SCC: the two cycles are components; tail vertices are singletons.
	labels, count, _, _ := pasgal.SCC(g, pasgal.Options{})
	fmt.Printf("SCC: %d components, labels %v\n", count, labels)

	// BCC runs on the symmetrized graph, like the paper.
	sym := g.Symmetrized()
	bcc, _, _ := pasgal.BCC(sym, pasgal.Options{})
	fmt.Printf("BCC: %d biconnected components, articulation points:", bcc.NumBCC)
	for v, isArt := range bcc.IsArt {
		if isArt {
			fmt.Printf(" %d", v)
		}
	}
	fmt.Println()

	// SSSP needs weights; attach deterministic uniform ones.
	wg := pasgal.AddUniformWeights(g, 1, 10, 42)
	wdist, _, _ := pasgal.SSSP(wg, 0, pasgal.RhoStepping{}, pasgal.Options{})
	fmt.Printf("SSSP distances from 0: %v\n", wdist)

	// The same API scales to generated graphs: a 100k-vertex grid — the
	// large-diameter regime PASGAL is designed for.
	grid := pasgal.GenerateGrid(100, 1000, false, 7)
	gd, gmet, _ := pasgal.BFS(grid, 0, pasgal.Options{})
	far := 0
	for _, d := range gd {
		if int(d) > far {
			far = int(d)
		}
	}
	fmt.Printf("grid BFS: diameter-ish %d in %d rounds (VGC: far fewer rounds than hops)\n",
		far, gmet.Rounds)
}
