// Social-network analysis: SCC structure and reachability on a power-law
// directed graph (the low-diameter regime, where PASGAL must stay
// competitive with direction-optimized systems rather than win big).
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"sort"
	"time"

	"pasgal"
)

func main() {
	// A directed RMAT graph models follower relationships.
	g := pasgal.GenerateRMAT(16, 16, true, 99)
	fmt.Println(g)

	// Degree profile: power-law graphs concentrate edges on hubs.
	degs := make([]int, g.N)
	for v := 0; v < g.N; v++ {
		degs[v] = g.Degree(uint32(v))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	fmt.Printf("degree profile: max=%d p99=%d median=%d\n",
		degs[0], degs[g.N/100], degs[g.N/2])

	// SCC: how much of the network is mutually connected?
	start := time.Now()
	labels, count, met, _ := pasgal.SCC(g, pasgal.Options{})
	sizes := map[uint32]int{}
	for _, l := range labels {
		sizes[l]++
	}
	giant := 0
	for _, s := range sizes {
		if s > giant {
			giant = s
		}
	}
	fmt.Printf("SCC: %d components, giant = %d vertices (%.1f%%) in %s; %d reachability phases\n",
		count, giant, 100*float64(giant)/float64(g.N),
		time.Since(start).Round(time.Millisecond), met.Phases)

	// BFS from the biggest hub with direction optimization: on social
	// networks most distance levels flip to cheap bottom-up rounds.
	hub := uint32(0)
	for v := uint32(1); v < uint32(g.N); v++ {
		if g.Degree(v) > g.Degree(hub) {
			hub = v
		}
	}
	dist, bmet, _ := pasgal.BFS(g, hub, pasgal.Options{})
	reach, ecc := 0, uint32(0)
	for _, d := range dist {
		if d != pasgal.InfDist {
			reach++
			if d > ecc {
				ecc = d
			}
		}
	}
	fmt.Printf("BFS from hub %d: reaches %d vertices, eccentricity %d, rounds %d (%d bottom-up)\n",
		hub, reach, ecc, bmet.Rounds, bmet.BottomUp)

	// Distance histogram — small-world graphs bunch at 2-4 hops.
	hist := map[uint32]int{}
	for _, d := range dist {
		if d != pasgal.InfDist {
			hist[d]++
		}
	}
	fmt.Print("hops histogram:")
	for d := uint32(0); d <= ecc; d++ {
		fmt.Printf(" %d:%d", d, hist[d])
	}
	fmt.Println()
}
