// Mesh reliability analysis with biconnectivity: on a planar mesh with
// holes (a "bubbles" graph, one of the paper's large-diameter synthetic
// inputs), articulation points are single points of failure and
// biconnected components are the failure-isolated regions. FAST-BCC finds
// both with no BFS and O(n) auxiliary memory.
//
//	go run ./examples/meshbcc
package main

import (
	"fmt"
	"time"

	"pasgal"
)

func main() {
	// A damaged mesh: a grid that lost a quarter of its links. The
	// survivors include tree-like fringes, so bridges and articulation
	// points abound.
	mesh := pasgal.GenerateSampledGrid(250, 250, 0.75, false, 3)
	fmt.Println(mesh)
	fmt.Printf("estimated diameter: >= %d\n", pasgal.EstimateDiameter(mesh, 3, 1))

	start := time.Now()
	res, met, _ := pasgal.BCC(mesh, pasgal.Options{})
	elapsed := time.Since(start)

	arts := 0
	for _, a := range res.IsArt {
		if a {
			arts++
		}
	}
	// Component size histogram over arcs.
	sizes := make([]int, res.NumBCC)
	for _, l := range res.ArcLabel {
		if l != pasgal.None {
			sizes[l]++
		}
	}
	largest, bridges := 0, 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
		if s == 2 { // both arcs of a single edge: a bridge
			bridges++
		}
	}
	fmt.Printf("FAST-BCC in %s: %d biconnected components, %d articulation points\n",
		elapsed.Round(time.Millisecond), res.NumBCC, arts)
	fmt.Printf("largest component: %d edges; bridges (single-edge BCCs): %d\n",
		largest/2, bridges)
	fmt.Printf("edges visited: %d (no BFS: the work is one connectivity pass,\n"+
		"one Euler tour, and one skeleton pass)\n", met.EdgesVisited)

	// Cross-check against the sequential Hopcroft–Tarjan reference.
	seqRes := pasgal.SequentialBCC(mesh)
	if seqRes.NumBCC != res.NumBCC {
		fmt.Printf("MISMATCH vs Hopcroft–Tarjan: %d vs %d\n", seqRes.NumBCC, res.NumBCC)
		return
	}
	fmt.Printf("verified against Hopcroft–Tarjan: %d components agree\n", res.NumBCC)
}
