// Road-network routing: the workload class (sparse, thousands of hops of
// diameter) where level-synchronous graph systems collapse and PASGAL's
// vertical granularity control pays off. The example builds a road-like
// graph, routes with the three stepping policies, and contrasts the
// synchronization counts of VGC BFS vs a plain level-synchronous schedule.
//
//	go run ./examples/roadnetwork
package main

import (
	"fmt"
	"time"

	"pasgal"
)

func main() {
	// A sampled grid is a faithful stand-in for a road network: average
	// degree ~3.8, near-planar, diameter Θ(sqrt n).
	road := pasgal.GenerateSampledGrid(300, 300, 0.95, false, 11)
	// Edge weights model travel times.
	weighted := pasgal.AddUniformWeights(road, 10, 1000, 12)
	fmt.Println(weighted)
	fmt.Printf("estimated diameter: >= %d hops\n", pasgal.EstimateDiameter(road, 3, 1))

	src := uint32(0)

	// Route with each stepping policy; all return identical distances,
	// with different phase/round trade-offs.
	for _, pc := range []struct {
		name   string
		policy pasgal.StepPolicy
	}{
		{"rho-stepping (PASGAL default)", pasgal.RhoStepping{}},
		{"delta-stepping", pasgal.DeltaStepping{Delta: 4000}},
		{"bellman-ford", pasgal.BellmanFordPolicy{}},
	} {
		start := time.Now()
		dist, met, _ := pasgal.SSSP(weighted, src, pc.policy, pasgal.Options{})
		reached := 0
		var far uint64
		for _, d := range dist {
			if d != pasgal.InfWeight {
				reached++
				if d > far {
					far = d
				}
			}
		}
		fmt.Printf("%-30s %8s  rounds=%-5d phases=%-4d reached=%d farthest=%d\n",
			pc.name, time.Since(start).Round(time.Microsecond),
			met.Rounds, met.Phases, reached, far)
	}

	// Actual routing: reconstruct a concrete route from the shortest-path
	// tree.
	dist, parent, _, _ := pasgal.SSSPTree(weighted, src, nil, pasgal.Options{})
	dstV := uint32(weighted.N - 1)
	for dist[dstV] == pasgal.InfWeight {
		dstV--
	}
	route := pasgal.PathTo(parent, src, dstV)
	fmt.Printf("\nroute %d -> %d: %d hops, travel time %d (first hops: %v...)\n",
		src, dstV, len(route)-1, dist[dstV], route[:min(6, len(route))])

	// A direct query is cheaper still: point-to-point search prunes
	// everything past the target.
	d, pmet, _ := pasgal.PointToPoint(weighted, src, dstV, nil, pasgal.Options{})
	fmt.Printf("point-to-point: same distance %v, %d edges touched\n",
		d == dist[dstV], pmet.EdgesVisited)

	// The headline effect: hop-distance search with VGC needs a small
	// fraction of the synchronizations a level-synchronous BFS pays.
	_, vgc, _ := pasgal.BFS(road, src, pasgal.Options{})
	_, lvl, _ := pasgal.BFS(road, src, pasgal.Options{Tau: 1, DisableDirectionOpt: true})
	fmt.Printf("BFS global synchronizations: VGC %d vs level-synchronous %d (%.0fx fewer)\n",
		vgc.Rounds, lvl.Rounds, float64(lvl.Rounds)/float64(vgc.Rounds))
}
