package pasgal

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// TestPublicAPIEndToEnd drives the whole public surface the way the
// quickstart does, with assertions.
func TestPublicAPIEndToEnd(t *testing.T) {
	edges := []Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 2, V: 3},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3},
		{U: 5, V: 6}, {U: 6, V: 7},
	}
	g := NewGraph(8, edges, true, BuildOptions{})

	dist, met, _ := BFS(g, 0, Options{})
	wantDist := []uint32{0, 1, 2, 3, 4, 5, 6, 7}
	for v := range wantDist {
		if dist[v] != wantDist[v] {
			t.Fatalf("BFS dist[%d] = %d, want %d", v, dist[v], wantDist[v])
		}
	}
	if met.Rounds == 0 {
		t.Fatal("BFS metrics missing")
	}
	seqDist := SequentialBFS(g, 0)
	for v := range dist {
		if dist[v] != seqDist[v] {
			t.Fatal("BFS disagrees with SequentialBFS")
		}
	}

	labels, count, _, _ := SCC(g, Options{})
	if count != 4 {
		t.Fatalf("SCC count = %d, want 4", count)
	}
	if labels[0] != labels[1] || labels[0] != labels[2] || labels[0] == labels[3] {
		t.Fatalf("SCC labels wrong: %v", labels)
	}
	if _, seqCount := SequentialSCC(g); seqCount != count {
		t.Fatal("SCC disagrees with SequentialSCC")
	}

	sym := g.Symmetrized()
	bcc, _, _ := BCC(sym, Options{})
	if bcc.NumBCC != 5 {
		t.Fatalf("BCC count = %d, want 5", bcc.NumBCC)
	}
	for _, v := range []int{2, 3, 5, 6} {
		if !bcc.IsArt[v] {
			t.Fatalf("vertex %d should articulate", v)
		}
	}
	if SequentialBCC(sym).NumBCC != bcc.NumBCC {
		t.Fatal("BCC disagrees with SequentialBCC")
	}

	wg := AddUniformWeights(g, 1, 10, 42)
	wdist, _, _ := SSSP(wg, 0, nil, Options{})
	seqW := SequentialSSSP(wg, 0)
	for v := range wdist {
		if wdist[v] != seqW[v] {
			t.Fatalf("SSSP dist[%d] = %d, want %d", v, wdist[v], seqW[v])
		}
	}
}

func TestGeneratorsAndStats(t *testing.T) {
	g := GenerateRMAT(10, 8, true, 1)
	if g.N != 1024 || !g.Directed {
		t.Fatalf("RMAT shape wrong: %v", g)
	}
	st := ComputeStats(g, 2, 1)
	if st.N != 1024 || st.MDirected == 0 || st.MSymmetric < st.MDirected {
		t.Fatalf("stats wrong: %+v", st)
	}
	grid := GenerateGrid(10, 200, false, 1)
	if d := EstimateDiameter(grid, 3, 1); d != 208 {
		t.Fatalf("grid diameter = %d, want 208", d)
	}
	chain := GenerateChain(100, true)
	if chain.M() != 99 {
		t.Fatal("chain wrong")
	}
	for _, g := range []*Graph{
		GenerateWebLike(3000, 6, 0.2, 30, 2),
		GenerateRGG(2000, 6, 3),
		GenerateKNN(1500, 5, 8, false, 4),
		GenerateSampledGrid(20, 20, 0.8, false, 5),
		GenerateTriGrid(15, 15),
		GeneratePerforatedGrid(30, 30, 8, 3, 6),
		GenerateER(500, 1500, true, 7),
	} {
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLoadSaveRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := AddUniformWeights(GenerateGrid(12, 12, false, 1), 1, 9, 2)
	for _, name := range []string{"g.adj", "g.bin", "g.el"} {
		path := filepath.Join(dir, name)
		if err := SaveGraph(path, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := LoadGraph(path, false)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.N != g.N || got.M() != g.M() || !got.Weighted() {
			t.Fatalf("%s: round trip mismatch (%v vs %v)", name, got, g)
		}
	}
	if _, err := LoadGraph(filepath.Join(dir, "missing.adj"), false); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestMustLoadGraphPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustLoadGraph("/nonexistent/definitely-missing.adj", false)
}

func TestGzipRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := AddUniformWeights(GenerateGrid(10, 10, false, 1), 1, 5, 2)
	for _, name := range []string{"g.adj.gz", "g.bin.gz", "g.el.gz"} {
		path := filepath.Join(dir, name)
		if err := SaveGraph(path, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := LoadGraph(path, false)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.N != g.N || got.M() != g.M() || !got.Weighted() {
			t.Fatalf("%s: gz round trip mismatch", name)
		}
	}
	// A non-gzip file with .gz extension errors cleanly.
	bad := filepath.Join(dir, "bad.adj.gz")
	if err := os.WriteFile(bad, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGraph(bad, false); err == nil {
		t.Fatal("expected gunzip error")
	}
}

func TestReachableAndConnectivity(t *testing.T) {
	// Two directed components: 0->1->2, 3->4.
	g := NewGraph(5, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}}, true, BuildOptions{})
	reach, met, _ := Reachable(g, []uint32{0}, Options{})
	want := []bool{true, true, true, false, false}
	for v := range want {
		if reach[v] != want[v] {
			t.Fatalf("reach[%d] = %v", v, reach[v])
		}
	}
	if met.Rounds == 0 {
		t.Fatal("no rounds")
	}
	// Multi-source.
	reach, _, _ = Reachable(g, []uint32{0, 3}, Options{})
	for v := 0; v < 5; v++ {
		if !reach[v] {
			t.Fatalf("multi-source reach[%d] false", v)
		}
	}
	// Connectivity on the symmetrized view.
	labels, count := ConnectedComponents(g.Symmetrized())
	if count != 2 || labels[0] != 0 || labels[4] != 3 {
		t.Fatalf("cc: count=%d labels=%v", count, labels)
	}
	tree, _, tc := SpanningForest(g.Symmetrized())
	if len(tree) != 3 || tc != 2 {
		t.Fatalf("forest: %d edges %d comps", len(tree), tc)
	}
	// KCore + subgraph utilities.
	ug := GenerateTriGrid(10, 10)
	core, degen, _, _ := KCore(ug, Options{})
	seqCore, seqDegen := SequentialKCore(ug)
	if degen != seqDegen {
		t.Fatalf("degeneracy %d vs %d", degen, seqDegen)
	}
	for v := range core {
		if core[v] != seqCore[v] {
			t.Fatal("kcore mismatch")
		}
	}
	lc, _ := LargestComponent(g)
	if lc.N != 3 {
		t.Fatalf("largest component n=%d", lc.N)
	}
	h := DegreeHistogram(ug)
	if len(h) == 0 {
		t.Fatal("empty degree histogram")
	}
	// Point-to-point.
	wg := AddUniformWeights(GenerateGrid(8, 8, false, 3), 1, 9, 4)
	d, _, _ := PointToPoint(wg, 0, 63, nil, Options{})
	full := SequentialSSSP(wg, 0)
	if d != full[63] {
		t.Fatalf("ptp %d vs %d", d, full[63])
	}
}

func TestWorkersControl(t *testing.T) {
	old := SetWorkers(3)
	defer SetWorkers(old)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d", Workers())
	}
	// Algorithms still correct under a forced worker count.
	g := GenerateGrid(20, 20, false, 1)
	dist, _, _ := BFS(g, 0, Options{})
	want := SequentialBFS(g, 0)
	for v := range want {
		if dist[v] != want[v] {
			t.Fatal("BFS wrong under SetWorkers")
		}
	}
}

func TestMiningWrappers(t *testing.T) {
	// K4 plus pendant: densest subgraph is the K4.
	g := NewGraph(6, []Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2},
		{U: 1, V: 3}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5},
	}, false, BuildOptions{})
	verts, density, _, _ := DensestSubgraph(g, Options{})
	if len(verts) != 4 || density != 1.5 {
		t.Fatalf("densest: %d verts density %v", len(verts), density)
	}
	sub, orig := InducedSubgraph(g, verts)
	if sub.N != 4 || sub.UndirectedM() != 6 {
		t.Fatalf("induced: %v", sub)
	}
	for i, v := range orig {
		if v != uint32(i) {
			t.Fatalf("orig = %v", orig)
		}
	}
}

// No algorithm may leak goroutines: the worker teams join at every round.
func TestNoGoroutineLeaks(t *testing.T) {
	g := GenerateSampledGrid(40, 40, 0.9, false, 1)
	wg := AddUniformWeights(g, 1, 50, 2)
	before := runtime.NumGoroutine()
	BFS(g, 0, Options{})
	SCC(GenerateRMAT(10, 8, true, 3), Options{})
	BCC(g, Options{})
	SSSP(wg, 0, nil, Options{})
	KCore(g, Options{})
	SSSPTree(wg, 0, nil, Options{})
	time.Sleep(50 * time.Millisecond) // let any stragglers exit
	after := runtime.NumGoroutine()
	if after > before+2 {
		t.Fatalf("goroutines leaked: %d -> %d", before, after)
	}
}

func TestSSSPTreeWrapper(t *testing.T) {
	g := AddUniformWeights(GenerateChain(6, true), 2, 2, 1)
	dist, parent, _, _ := SSSPTree(g, 0, nil, Options{})
	path := PathTo(parent, 0, 5)
	if len(path) != 6 || dist[5] != 10 {
		t.Fatalf("path %v dist %d", path, dist[5])
	}
}

// TestPublicAPICancellation: every public algorithm wrapper honors a
// pre-canceled Options.Ctx — typed sentinel out, no result claimed
// complete. The deep per-algorithm conformance lives in
// internal/core/cancel_test.go; this pins the re-exported surface
// (pasgal.ErrCanceled / pasgal.ErrDeadline and the Options alias).
func TestPublicAPICancellation(t *testing.T) {
	var edges []Edge
	for i := uint32(0); i < 999; i++ {
		edges = append(edges, Edge{U: i, V: i + 1, W: 1 + i%9})
	}
	dg := NewGraph(1000, edges, true, BuildOptions{Weighted: true})
	ug := NewGraph(1000, edges, false, BuildOptions{Weighted: true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := Options{Ctx: ctx}
	runs := map[string]func() error{
		"BFS":     func() error { _, _, err := BFS(dg, 0, opt); return err },
		"BFSTree": func() error { _, _, _, err := BFSTree(dg, 0, opt); return err },
		"SCC":     func() error { _, _, _, err := SCC(dg, opt); return err },
		"BCC":     func() error { _, _, err := BCC(ug, opt); return err },
		"SSSP":    func() error { _, _, err := SSSP(ug, 0, RhoStepping{}, opt); return err },
		"SSSPTree": func() error {
			_, _, _, err := SSSPTree(ug, 0, RhoStepping{}, opt)
			return err
		},
		"PointToPoint": func() error {
			_, _, err := PointToPoint(ug, 0, 999, RhoStepping{}, opt)
			return err
		},
		"KCore":     func() error { _, _, _, err := KCore(ug, opt); return err },
		"Reachable": func() error { _, _, err := Reachable(dg, []uint32{0}, opt); return err },
		"Bridges":   func() error { _, _, _, err := Bridges(ug, opt); return err },
		"DensestSubgraph": func() error {
			_, _, _, err := DensestSubgraph(ug, opt)
			return err
		},
	}
	for name, run := range runs {
		if err := run(); !errors.Is(err, ErrCanceled) {
			t.Errorf("%s: err = %v, want pasgal.ErrCanceled", name, err)
		}
	}
	// And the deadline flavor maps to the other sentinel.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, _, err := BFS(dg, 0, Options{Ctx: dctx}); !errors.Is(err, ErrDeadline) {
		t.Errorf("deadline: err = %v, want pasgal.ErrDeadline", err)
	}
}
