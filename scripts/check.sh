#!/bin/sh
# check.sh — the full local verification gate, in increasing cost order:
# formatting, go vet, build + unit tests, the pasgal-vet concurrency
# checker, then the -race stress tier over the concurrency-critical
# packages. Run from anywhere inside the repository. Set PASGAL_SKIP_RACE=1
# to stop before the race tier (it dominates the runtime, ~30s).
set -eu

cd "$(dirname "$0")/.."

echo '== gofmt'
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo '== go vet'
go vet ./...

echo '== build + tests'
go build ./...
go test ./...

echo '== pasgal-vet'
go run ./cmd/pasgal-vet ./...

if [ "${PASGAL_SKIP_RACE:-0}" = 1 ]; then
    echo '== race tier skipped (PASGAL_SKIP_RACE=1)'
    exit 0
fi

echo '== race stress tier'
go test -race -run Stress -count=3 \
    ./internal/hashbag ./internal/parallel ./internal/conn ./internal/core

echo 'all checks passed'
