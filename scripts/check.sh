#!/bin/sh
# check.sh — the full local verification gate, in increasing cost order:
# formatting, go vet, build + unit tests, the pasgal-vet concurrency
# checker, the bench regression gate, then the -race stress tier over the
# concurrency-critical packages. Run from anywhere inside the repository.
#
#   check.sh -short        formatting, vet, build, and short-mode tests only
#   PASGAL_SKIP_RACE=1     stop before the race tier (it dominates, ~30s)
#   PASGAL_SKIP_BENCH=1    skip the bench regression gate
#   PASGAL_SKIP_VET=1      skip the pasgal-vet concurrency checker
#   PASGAL_SKIP_FUZZ=1     skip the 30s fuzz smoke
set -eu

cd "$(dirname "$0")/.."

short=0
for arg in "$@"; do
    case "$arg" in
    -short) short=1 ;;
    *)
        echo "usage: check.sh [-short]" >&2
        exit 2
        ;;
    esac
done

echo '== gofmt'
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo '== go vet'
go vet ./...

echo '== build + tests'
go build ./...
if [ "$short" = 1 ]; then
    go test -short ./...
    echo '== scheduler conformance suite'
    go test -run 'Conformance|PanicPropagation|SchedStatsMatchTracer' -count=1 \
        ./internal/parallel
    echo 'short checks passed'
    exit 0
fi
covtmp=$(mktemp /tmp/pasgal-cover.XXXXXX.txt)
tmpjson=$(mktemp /tmp/pasgal-bench.XXXXXX.json)
trap 'rm -f "$covtmp" "$tmpjson"' EXIT
go test -cover ./... | tee "$covtmp"

echo '== coverage ratchet'
# Per-package statement coverage must not drop below the committed
# baseline (scripts/coverage-baseline.txt). Baselines sit a couple of
# points under the measured value so concurrency-dependent paths (steal
# slots, timer flushes) can flap without false alarms; raise them when a
# package's coverage genuinely improves.
awk '
    NR == FNR { base[$1] = $2; next }
    /coverage:/ {
        pct = ""
        for (i = 1; i <= NF; i++)
            if ($i == "coverage:") pct = substr($(i+1), 1, length($(i+1)) - 1)
        if (pct == "") next
        seen[$2] = 1
        if ($2 in base && pct + 0 < base[$2] + 0) {
            printf "coverage regression: %s at %s%% (baseline %s%%)\n", $2, pct, base[$2]
            bad = 1
        }
    }
    END {
        for (p in base)
            if (!(p in seen)) {
                printf "coverage ratchet: baseline package %s reported no coverage\n", p
                bad = 1
            }
        if (!bad) print "coverage ratchet ok"
        exit bad
    }
' scripts/coverage-baseline.txt "$covtmp"

if [ "${PASGAL_SKIP_VET:-0}" = 1 ]; then
    echo '== pasgal-vet skipped (PASGAL_SKIP_VET=1)'
else
    echo '== pasgal-vet'
    # Whole-module interprocedural pass. The root package, internal/, cmd/,
    # and examples/ are named explicitly so a pattern regression cannot
    # silently drop one; -time prints the engine-phase and per-package
    # breakdown so a slow rule is visible immediately.
    go run ./cmd/pasgal-vet -time . ./internal/... ./cmd/... ./examples/...
fi

if [ "${PASGAL_SKIP_BENCH:-0}" = 1 ]; then
    echo '== bench regression gate skipped (PASGAL_SKIP_BENCH=1)'
else
    echo '== bench regression gate'
    # A tiny BFS + graph-construction run compared against the committed
    # baseline. Absolute times vary wildly across machines, so the threshold
    # is deliberately huge (20x): the gate exists to exercise the
    # -json/-compare pipeline end to end and to catch order-of-magnitude
    # blowups, not small drift.
    go run ./cmd/pasgal-bench -exp bfs,build,queries,serve,compress,updates -scale 0.05 -reps 1 -json "$tmpjson" >/dev/null
    go run ./cmd/pasgal-bench -compare -threshold 20 \
        scripts/bench-baseline.json "$tmpjson"
fi

if [ "${PASGAL_SKIP_FUZZ:-0}" = 1 ]; then
    echo '== fuzz smoke skipped (PASGAL_SKIP_FUZZ=1)'
else
    echo '== fuzz smoke (30s)'
    # Thirty seconds of FuzzMSBFS against the sequential oracle: enough to
    # churn through tens of thousands of random graph/batch inputs on top
    # of the committed lane-boundary seed corpus.
    go test -run '^$' -fuzz FuzzMSBFS -fuzztime 30s ./internal/msbfs
fi

if [ "${PASGAL_SKIP_RACE:-0}" = 1 ]; then
    echo '== race tier skipped (PASGAL_SKIP_RACE=1)'
    exit 0
fi

echo '== race stress tier'
go test -race -run Stress -count=3 \
    ./internal/hashbag ./internal/parallel ./internal/conn ./internal/core \
    ./internal/msbfs ./internal/serve ./internal/delta
# The scheduler conformance suite under -race: one pass over every
# primitive x worker-count x grain x size cell catches ordering bugs the
# stress loops' fixed shapes miss.
go test -race -run 'Conformance|PanicPropagation' -count=1 ./internal/parallel
# Cancellation conformance under -race: pre-canceled contexts, expired
# deadlines, and mid-run cancels across every entry point — the
# fire/drain hand-off is exactly the kind of publication race -race sees
# and plain runs miss.
go test -race -run 'Cancel' -count=1 \
    ./internal/parallel ./internal/core ./internal/baseline ./internal/msbfs \
    ./internal/serve ./internal/delta

echo 'all checks passed'
