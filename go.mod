module pasgal

go 1.22
