// pasgal-convert converts between the supported graph formats (.adj,
// .bin, .pz, .mtx, .gr, edge list; any with a .gz suffix).
//
// Usage:
//
//	pasgal-convert -in road.gr -out road.bin
//	pasgal-convert -in web.adj.gz -out web.mtx -directed=true
//	pasgal-convert -in social.el -out social.adj -symmetrize
//	pasgal-convert -in social.bin -out social.pz -relabel -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pasgal"
)

func main() {
	in := flag.String("in", "", "input graph file")
	out := flag.String("out", "", "output graph file")
	directed := flag.Bool("directed", true, "treat direction-less input formats as directed")
	symmetrize := flag.Bool("symmetrize", false, "symmetrize the graph before writing")
	relabel := flag.Bool("relabel", false, "renumber vertices by descending degree before writing (shrinks .pz output)")
	stats := flag.Bool("stats", false, "print basic statistics of the converted graph")
	flag.Parse()

	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "pasgal-convert: need -in and -out")
		os.Exit(2)
	}
	g, err := pasgal.LoadGraph(*in, *directed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pasgal-convert: %v\n", err)
		os.Exit(1)
	}
	if *symmetrize {
		g = g.Symmetrized()
	}
	if *relabel {
		g, _ = pasgal.RelabelByDegree(g)
	}
	// A bare .pz target compresses once and writes that object directly
	// (SaveGraph would too, but here the compressed form is kept for the
	// bytes/edge report); .pz.gz and every other extension go through the
	// generic dispatcher.
	var compressed *pasgal.CompressedGraph
	if strings.HasSuffix(*out, ".pz") {
		compressed = pasgal.CompressGraph(g)
		err = pasgal.SaveCompressed(*out, compressed)
	} else {
		err = pasgal.SaveGraph(*out, g)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pasgal-convert: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s -> %s: %v\n", *in, *out, g)
	if *stats {
		st := pasgal.ComputeStats(g, 3, 1)
		fmt.Printf("n=%d m'=%d m=%d D'>=%d D>=%d maxdeg=%d avgdeg=%.2f\n",
			st.N, st.MDirected, st.MSymmetric, st.DiamLBDir, st.DiamLB,
			st.MaxDeg, st.AvgDeg)
		if compressed != nil {
			plain := 4.0 + 8.0*float64(g.N+1)/float64(max(len(g.Edges), 1))
			if g.Weighted() {
				plain += 4.0
			}
			fmt.Printf("compressed: %.2f bytes/edge (plain CSR %.2f, ratio %.2f)\n",
				compressed.BytesPerArc(), plain, compressed.BytesPerArc()/plain)
		}
	}
}
