// pasgal-convert converts between the supported graph formats (.adj,
// .bin, .mtx, .gr, edge list; any with a .gz suffix).
//
// Usage:
//
//	pasgal-convert -in road.gr -out road.bin
//	pasgal-convert -in web.adj.gz -out web.mtx -directed=true
//	pasgal-convert -in social.el -out social.adj -symmetrize
package main

import (
	"flag"
	"fmt"
	"os"

	"pasgal"
)

func main() {
	in := flag.String("in", "", "input graph file")
	out := flag.String("out", "", "output graph file")
	directed := flag.Bool("directed", true, "treat direction-less input formats as directed")
	symmetrize := flag.Bool("symmetrize", false, "symmetrize the graph before writing")
	stats := flag.Bool("stats", false, "print basic statistics of the converted graph")
	flag.Parse()

	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "pasgal-convert: need -in and -out")
		os.Exit(2)
	}
	g, err := pasgal.LoadGraph(*in, *directed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pasgal-convert: %v\n", err)
		os.Exit(1)
	}
	if *symmetrize {
		g = g.Symmetrized()
	}
	if err := pasgal.SaveGraph(*out, g); err != nil {
		fmt.Fprintf(os.Stderr, "pasgal-convert: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s -> %s: %v\n", *in, *out, g)
	if *stats {
		st := pasgal.ComputeStats(g, 3, 1)
		fmt.Printf("n=%d m'=%d m=%d D'>=%d D>=%d maxdeg=%d avgdeg=%.2f\n",
			st.N, st.MDirected, st.MSymmetric, st.DiamLBDir, st.DiamLB,
			st.MaxDeg, st.AvgDeg)
	}
}
