// pasgal-gen writes a registry workload (or a custom generator) to a graph
// file in any supported format.
//
// Usage:
//
//	pasgal-gen -workload REC -scale 1.0 -o rec.bin
//	pasgal-gen -rmat 18 -ef 16 -o social.adj
//	pasgal-gen -grid 1000x100 -o grid.el
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pasgal"
	"pasgal/internal/bench"
)

func main() {
	workload := flag.String("workload", "", "registry workload name (LJ, TW, NA, REC, ...)")
	scale := flag.Float64("scale", 1.0, "workload size multiplier")
	rmat := flag.Int("rmat", 0, "generate RMAT with this scale (2^scale vertices)")
	ef := flag.Int("ef", 16, "RMAT edge factor")
	grid := flag.String("grid", "", "generate a grid, ROWSxCOLS")
	seed := flag.Uint64("seed", 1, "generator seed")
	directed := flag.Bool("directed", true, "generate a directed graph")
	weights := flag.Bool("weights", false, "attach uniform random weights in [1, 2^16]")
	out := flag.String("o", "", "output path (.adj, .bin, or edge list)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "pasgal-gen: need -o")
		os.Exit(2)
	}
	var g *pasgal.Graph
	switch {
	case *workload != "":
		spec := bench.LookupSpec(*workload)
		if spec == nil {
			fmt.Fprintf(os.Stderr, "pasgal-gen: unknown workload %q (have: ", *workload)
			for i, s := range bench.Registry() {
				if i > 0 {
					fmt.Fprint(os.Stderr, ", ")
				}
				fmt.Fprint(os.Stderr, s.Name)
			}
			fmt.Fprintln(os.Stderr, ")")
			os.Exit(2)
		}
		g = spec.Build(*scale)
	case *rmat > 0:
		g = pasgal.GenerateRMAT(*rmat, *ef, *directed, *seed)
	case *grid != "":
		var rows, cols int
		if _, err := fmt.Sscanf(strings.ToLower(*grid), "%dx%d", &rows, &cols); err != nil {
			fmt.Fprintf(os.Stderr, "pasgal-gen: bad -grid %q: %v\n", *grid, err)
			os.Exit(2)
		}
		g = pasgal.GenerateGrid(rows, cols, *directed, *seed)
	default:
		fmt.Fprintln(os.Stderr, "pasgal-gen: need one of -workload, -rmat, -grid")
		os.Exit(2)
	}
	if *weights {
		g = pasgal.AddUniformWeights(g, 1, 1<<16, *seed)
	}
	if err := pasgal.SaveGraph(*out, g); err != nil {
		fmt.Fprintf(os.Stderr, "pasgal-gen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %v\n", *out, g)
}
