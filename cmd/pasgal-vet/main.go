// Command pasgal-vet runs the PASGAL-specific concurrency static-analysis
// suite (internal/lint) over module packages. It exits non-zero when any
// finding survives the //pasgal:vet ignore= allowlist, which makes it
// suitable as a CI gate (see scripts/check.sh).
//
// Usage:
//
//	pasgal-vet [flags] [patterns ...]
//
// Patterns are package directories or recursive dir/... forms; the default
// is ./... (the whole module, skipping testdata). Examples:
//
//	pasgal-vet ./...
//	pasgal-vet -json ./internal/hashbag ./internal/parallel
//	pasgal-vet -rules mixed-access,parallel-capture ./internal/...
//	pasgal-vet ./internal/lint/testdata/src/...   # vets the fixtures: must fail
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pasgal/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of file:line text")
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	list := flag.Bool("list", false, "list the available rules and exit")
	timing := flag.Bool("time", false, "print engine phase and per-package timings to stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: pasgal-vet [flags] [patterns ...]\n\nPASGAL concurrency vet: %s\n\nFlags:\n",
			strings.Join(lint.AnalyzerNames(), ", "))
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	opts := lint.Options{IncludeTests: *tests}
	if *rules != "" {
		for _, r := range strings.Split(*rules, ",") {
			if r = strings.TrimSpace(r); r != "" {
				if !validRule(r) {
					fmt.Fprintf(os.Stderr, "pasgal-vet: unknown rule %q (have: %s)\n",
						r, strings.Join(lint.AnalyzerNames(), ", "))
					os.Exit(2)
				}
				opts.Rules = append(opts.Rules, r)
			}
		}
	}

	res, err := lint.RunResult(flag.Args(), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pasgal-vet: %v\n", err)
		os.Exit(2)
	}
	findings := res.Findings

	if *timing {
		fmt.Fprintln(os.Stderr, "pasgal-vet timings:")
		for _, tm := range res.Timings {
			fmt.Fprintf(os.Stderr, "  %-40s %s\n", tm.Name, tm.Dur.Round(10*time.Microsecond))
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "pasgal-vet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "pasgal-vet: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

func validRule(name string) bool {
	for _, n := range lint.AnalyzerNames() {
		if n == name {
			return true
		}
	}
	return false
}
