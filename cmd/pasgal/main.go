// pasgal runs one library algorithm on a graph file or a registry
// workload and reports the result summary plus the run's metrics.
//
// Usage:
//
//	pasgal -algo bfs  -graph road.adj -src 0
//	pasgal -algo scc  -workload TW -scale 0.5
//	pasgal -algo bcc  -graph mesh.bin
//	pasgal -algo sssp -graph road.adj -policy rho -src 3
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pasgal"
	"pasgal/internal/bench"
)

func main() {
	algo := flag.String("algo", "bfs", "algorithm: bfs|batch|scc|bcc|sssp|kcore|ptp|cc|reach")
	path := flag.String("graph", "", "graph file (.adj, .bin, or edge list)")
	workload := flag.String("workload", "", "registry workload name (alternative to -graph)")
	scale := flag.Float64("scale", 1.0, "workload size multiplier (with -workload)")
	directed := flag.Bool("directed", true, "treat file input as directed")
	src := flag.Int("src", -1, "source vertex (-1 = max-degree vertex)")
	dst := flag.Int("dst", 0, "destination vertex (ptp)")
	batchN := flag.Int("batch", 64, "number of batched sources (batch)")
	tau := flag.Int("tau", 0, "VGC budget (0 = default)")
	policy := flag.String("policy", "rho", "SSSP policy: rho|delta|bf")
	weightMax := flag.Uint("wmax", 1<<16, "max random weight if the graph is unweighted (sssp)")
	verify := flag.Bool("verify", false, "cross-check the result against the sequential reference")
	timeout := flag.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
	flag.Parse()

	// Ctrl-C cancels the run gracefully: the algorithm drains, reports its
	// partial metrics, and the process exits cleanly instead of dying
	// mid-computation. A second SIGINT kills the process as usual.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var g *pasgal.Graph
	switch {
	case *path != "":
		var err error
		g, err = pasgal.LoadGraph(*path, *directed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pasgal: %v\n", err)
			os.Exit(1)
		}
	case *workload != "":
		spec := bench.LookupSpec(*workload)
		if spec == nil {
			fmt.Fprintf(os.Stderr, "pasgal: unknown workload %q\n", *workload)
			os.Exit(2)
		}
		g = spec.Build(*scale)
	default:
		fmt.Fprintln(os.Stderr, "pasgal: need -graph or -workload")
		os.Exit(2)
	}
	fmt.Println(g)

	opt := pasgal.Options{Ctx: ctx, Tau: *tau}
	source := uint32(0)
	if *src >= 0 {
		source = uint32(*src)
	} else if g.N > 0 {
		source = bench.PickSource(g)
	}

	start := time.Now()
	switch *algo {
	case "bfs":
		dist, met, err := pasgal.BFS(g, source, opt)
		abortOn(err, met, time.Since(start))
		reached, maxd := 0, uint32(0)
		for _, d := range dist {
			if d != pasgal.InfDist {
				reached++
				if d > maxd {
					maxd = d
				}
			}
		}
		fmt.Printf("bfs from %d: reached %d vertices, eccentricity %d\n", source, reached, maxd)
		report(met, time.Since(start))
		if *verify {
			want := pasgal.SequentialBFS(g, source)
			for v := range want {
				if dist[v] != want[v] {
					fmt.Fprintf(os.Stderr, "VERIFY FAILED: dist[%d] = %d, want %d\n", v, dist[v], want[v])
					os.Exit(1)
				}
			}
			fmt.Println("verified against sequential queue BFS")
		}
	case "batch":
		if *batchN <= 0 {
			fmt.Fprintln(os.Stderr, "pasgal: -batch must be positive")
			os.Exit(2)
		}
		// Deterministic source spread: the requested source first, then a
		// fixed stride over the vertex space so lanes hit distinct regions.
		srcs := make([]uint32, *batchN)
		srcs[0] = source
		for i := 1; i < len(srcs); i++ {
			srcs[i] = uint32((uint64(source) + uint64(i)*2654435761) % uint64(g.N))
		}
		rows, met, err := pasgal.BatchedBFS(g, srcs, opt)
		abortOn(err, met, time.Since(start))
		elapsed := time.Since(start)
		reached := 0
		for _, row := range rows {
			for _, d := range row {
				if d != pasgal.InfDist {
					reached++
				}
			}
		}
		fmt.Printf("batch: %d BFS queries, %d (vertex, source) pairs reached, %.0f queries/sec\n",
			len(srcs), reached, float64(len(srcs))/elapsed.Seconds())
		report(met, elapsed)
		if *verify {
			for i, s := range srcs {
				want := pasgal.SequentialBFS(g, s)
				for v := range want {
					if rows[i][v] != want[v] {
						fmt.Fprintf(os.Stderr, "VERIFY FAILED: lane %d dist[%d] = %d, want %d\n",
							i, v, rows[i][v], want[v])
						os.Exit(1)
					}
				}
			}
			fmt.Println("verified against sequential queue BFS")
		}
	case "scc":
		_, count, met, err := pasgal.SCC(g, opt)
		abortOn(err, met, time.Since(start))
		fmt.Printf("scc: %d strongly connected components\n", count)
		report(met, time.Since(start))
		if *verify {
			if _, want := pasgal.SequentialSCC(g); want != count {
				fmt.Fprintf(os.Stderr, "VERIFY FAILED: %d components, Tarjan says %d\n", count, want)
				os.Exit(1)
			}
			fmt.Println("verified against sequential Tarjan")
		}
	case "bcc":
		sym := g.Symmetrized()
		res, met, err := pasgal.BCC(sym, opt)
		abortOn(err, met, time.Since(start))
		arts := 0
		for _, a := range res.IsArt {
			if a {
				arts++
			}
		}
		fmt.Printf("bcc: %d biconnected components, %d articulation points\n", res.NumBCC, arts)
		report(met, time.Since(start))
		if *verify {
			if want := pasgal.SequentialBCC(sym); want.NumBCC != res.NumBCC {
				fmt.Fprintf(os.Stderr, "VERIFY FAILED: %d components, Hopcroft–Tarjan says %d\n",
					res.NumBCC, want.NumBCC)
				os.Exit(1)
			}
			fmt.Println("verified against sequential Hopcroft–Tarjan")
		}
	case "sssp":
		wg := g
		if !wg.Weighted() {
			wg = pasgal.AddUniformWeights(g, 1, uint32(*weightMax), 1)
		}
		var pol pasgal.StepPolicy
		switch *policy {
		case "rho":
			pol = pasgal.RhoStepping{}
		case "delta":
			pol = pasgal.DeltaStepping{Delta: 1 << 15}
		case "bf":
			pol = pasgal.BellmanFordPolicy{}
		default:
			fmt.Fprintf(os.Stderr, "pasgal: unknown policy %q\n", *policy)
			os.Exit(2)
		}
		dist, met, err := pasgal.SSSP(wg, source, pol, opt)
		abortOn(err, met, time.Since(start))
		reached := 0
		var maxd uint64
		for _, d := range dist {
			if d != pasgal.InfWeight {
				reached++
				if d > maxd {
					maxd = d
				}
			}
		}
		fmt.Printf("sssp(%s) from %d: reached %d vertices, max distance %d\n",
			*policy, source, reached, maxd)
		report(met, time.Since(start))
		if *verify {
			want := pasgal.SequentialSSSP(wg, source)
			for v := range want {
				if dist[v] != want[v] {
					fmt.Fprintf(os.Stderr, "VERIFY FAILED: dist[%d] = %d, Dijkstra says %d\n",
						v, dist[v], want[v])
					os.Exit(1)
				}
			}
			fmt.Println("verified against sequential Dijkstra")
		}
	case "kcore":
		sym := g.Symmetrized()
		core, degeneracy, met, err := pasgal.KCore(sym, opt)
		abortOn(err, met, time.Since(start))
		hist := map[uint32]int{}
		for _, c := range core {
			hist[c]++
		}
		fmt.Printf("kcore: degeneracy %d; %d vertices in the top core\n",
			degeneracy, hist[uint32(degeneracy)])
		report(met, time.Since(start))
		if *verify {
			seqCore, seqDeg := pasgal.SequentialKCore(sym)
			for v := range core {
				if core[v] != seqCore[v] || seqDeg != degeneracy {
					fmt.Fprintf(os.Stderr, "VERIFY FAILED at vertex %d\n", v)
					os.Exit(1)
				}
			}
			fmt.Println("verified against sequential Matula–Beck")
		}
	case "ptp":
		wg := g
		if !wg.Weighted() {
			wg = pasgal.AddUniformWeights(g, 1, uint32(*weightMax), 1)
		}
		d, met, err := pasgal.PointToPoint(wg, source, uint32(*dst), nil, opt)
		abortOn(err, met, time.Since(start))
		if d == pasgal.InfWeight {
			fmt.Printf("ptp: %d -> %d unreachable\n", source, *dst)
		} else {
			fmt.Printf("ptp: dist(%d, %d) = %d\n", source, *dst, d)
		}
		report(met, time.Since(start))
		if *verify {
			if want := pasgal.SequentialSSSP(wg, source)[*dst]; want != d {
				fmt.Fprintf(os.Stderr, "VERIFY FAILED: %d, Dijkstra says %d\n", d, want)
				os.Exit(1)
			}
			fmt.Println("verified against sequential Dijkstra")
		}
	case "cc":
		sym := g.Symmetrized()
		_, count := pasgal.ConnectedComponents(sym)
		fmt.Printf("cc: %d connected components\n", count)
	case "reach":
		reach, met, err := pasgal.Reachable(g, []uint32{source}, opt)
		abortOn(err, met, time.Since(start))
		n := 0
		for _, r := range reach {
			if r {
				n++
			}
		}
		fmt.Printf("reach: %d vertices reachable from %d\n", n, source)
		report(met, time.Since(start))
	default:
		fmt.Fprintf(os.Stderr, "pasgal: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
}

// abortOn reports a canceled/expired run (partial metrics included) and
// exits. Nil errors pass through.
func abortOn(err error, met *pasgal.Metrics, elapsed time.Duration) {
	if err == nil {
		return
	}
	// The typed sentinels already carry the "pasgal:" prefix.
	fmt.Fprintf(os.Stderr, "%v\n", err)
	report(met, elapsed)
	os.Exit(3)
}

func report(met *pasgal.Metrics, elapsed time.Duration) {
	fmt.Printf("time %s | rounds %d (bottom-up %d) | edges visited %d | max frontier %d | phases %d\n",
		elapsed.Round(time.Microsecond), met.Rounds, met.BottomUp,
		met.EdgesVisited, met.MaxFrontier, met.Phases)
}
