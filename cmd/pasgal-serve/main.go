// pasgal-serve is the long-running graph query daemon: it loads graphs
// into memory once at startup and answers concurrent bfs / sssp / scc /
// kcore / reachable / p2p queries over HTTP/JSON until told to stop.
//
// Usage:
//
//	pasgal-serve -workload TW -listen :8080
//	pasgal-serve -workload TW,NA -scale 0.5 -max-concurrent 4
//	pasgal-serve -graph road.adj -cache 1024 -max-timeout 10s
//	pasgal-serve -graph social.pz -mmap
//	pasgal-serve -workload TW -mutable
//
// Queries:
//
//	curl 'localhost:8080/query/bfs?graph=TW&src=3'
//	curl 'localhost:8080/query/p2p?graph=TW&src=3&dst=9&timeout=50ms'
//	curl -X POST 'localhost:8080/update?graph=TW' -d '{"inserts":[{"u":3,"v":9}]}'
//	curl 'localhost:8080/metrics'
//
// SIGINT/SIGTERM drains gracefully: the listener stops accepting, new
// queries get 503, in-flight queries finish (or hit their deadline), and
// the process exits 0. See docs/SERVING.md for the full API contract.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"pasgal"
	"pasgal/internal/bench"
	"pasgal/internal/core"
	"pasgal/internal/graph"
	"pasgal/internal/serve"
)

func main() {
	listen := flag.String("listen", ":8080", "listen address")
	workload := flag.String("workload", "", "comma-separated registry workload names to serve")
	scale := flag.Float64("scale", 1.0, "workload size multiplier (with -workload)")
	path := flag.String("graph", "", "graph file to serve (.adj, .bin, .pz, or edge list)")
	directed := flag.Bool("directed", true, "treat file input as directed")
	mmap := flag.Bool("mmap", false, "memory-map a .pz graph instead of reading it (O(page-in) startup; arc data faults in on demand)")
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	maxConc := flag.Int("max-concurrent", 0, "admission bound on concurrent computations (0 = worker count)")
	cacheEntries := flag.Int("cache", serve.DefaultCacheEntries, "result cache entries (negative disables)")
	maxTimeout := flag.Duration("max-timeout", serve.DefaultMaxTimeout, "cap on per-query ?timeout= and the implicit deadline")
	coalesceWait := flag.Duration("coalesce-wait", 0, "coalescer flush latency bound (0 = library default)")
	coalesce := flag.Bool("coalesce", true, "group-commit single-source bfs/reachable into shared MS-BFS runs")
	tau := flag.Int("tau", 0, "VGC budget for served queries (0 = default)")
	mutable := flag.Bool("mutable", false, "serve graphs through epoch-snapshot delta stores; POST /update applies insert/delete batches (plain CSR only)")
	compactFrac := flag.Float64("compact-fraction", 0, "with -mutable: background-compact when the overlay exceeds this fraction of the base arcs (0 = default, negative disables)")
	flag.Parse()

	if *mutable && *mmap {
		// An mmap view is a read-only compressed file; there is no plain
		// CSR to base a delta store on.
		fmt.Fprintln(os.Stderr, "pasgal-serve: -mutable and -mmap are incompatible (mutable serving needs plain CSR)")
		os.Exit(2)
	}

	if *workers > 0 {
		pasgal.SetWorkers(*workers)
	}

	graphs := make(map[string]graph.Adjacency)
	var closers []func() error
	if *workload != "" {
		for _, name := range strings.Split(*workload, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			spec := bench.LookupSpec(name)
			if spec == nil {
				fmt.Fprintf(os.Stderr, "pasgal-serve: unknown workload %q\n", name)
				os.Exit(2)
			}
			fmt.Printf("pasgal-serve: building workload %s (scale %g)...\n", name, *scale)
			graphs[name] = spec.Build(*scale)
		}
	}
	if *path != "" {
		name := strings.TrimSuffix(filepath.Base(*path), filepath.Ext(*path))
		start := time.Now()
		switch {
		case *mmap:
			// Memory-mapped startup: only the header and offset table are
			// touched before serving begins; compressed arc bytes page in
			// lazily as queries scan them.
			if !strings.HasSuffix(*path, ".pz") {
				fmt.Fprintln(os.Stderr, "pasgal-serve: -mmap requires a .pz graph file")
				os.Exit(2)
			}
			c, closer, err := pasgal.MapCompressed(*path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pasgal-serve: %v\n", err)
				os.Exit(1)
			}
			closers = append(closers, closer)
			graphs[name] = c
			fmt.Printf("pasgal-serve: mapped %s in %v (%.2f bytes/edge; arc data pages in on demand)\n",
				*path, time.Since(start).Round(time.Microsecond), c.BytesPerArc())
		case strings.HasSuffix(*path, ".pz"):
			// Without -mmap the whole file is read, checksummed, and
			// validated, but still served compressed.
			c, err := pasgal.LoadCompressed(*path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pasgal-serve: %v\n", err)
				os.Exit(1)
			}
			graphs[name] = c
			fmt.Printf("pasgal-serve: loaded %s in %v (verified, %.2f bytes/edge)\n",
				*path, time.Since(start).Round(time.Millisecond), c.BytesPerArc())
		default:
			g, err := pasgal.LoadGraph(*path, *directed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pasgal-serve: %v\n", err)
				os.Exit(1)
			}
			graphs[name] = g
		}
	}
	if len(graphs) == 0 {
		fmt.Fprintln(os.Stderr, "pasgal-serve: need -workload and/or -graph")
		os.Exit(2)
	}
	for name, g := range graphs {
		fmt.Printf("pasgal-serve: serving %q: %v\n", name, g)
	}

	srv, err := serve.NewAdj(graphs, serve.Config{
		MaxConcurrent:   *maxConc,
		CacheEntries:    *cacheEntries,
		MaxTimeout:      *maxTimeout,
		CoalesceWait:    *coalesceWait,
		DisableCoalesce: !*coalesce,
		Opt:             core.Options{Tau: *tau},
		Mutable:         *mutable,
		CompactFraction: *compactFrac,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pasgal-serve: %v\n", err)
		os.Exit(1)
	}

	// Listen explicitly (rather than ListenAndServe) so -listen :0 picks a
	// free port and the actual bound address is printed for the client.
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pasgal-serve: %v\n", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Printf("pasgal-serve: listening on %s (%d workers, admission %s)\n",
		ln.Addr(), pasgal.Workers(), admDesc(*maxConc))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "pasgal-serve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process as usual

	// Drain: stop accepting, let in-flight requests finish (bounded by
	// their own deadlines plus a shutdown grace period), then release the
	// server's coalescers and counters.
	fmt.Println("pasgal-serve: draining...")
	shCtx, cancel := context.WithTimeout(context.Background(), *maxTimeout+5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "pasgal-serve: shutdown: %v\n", err)
	}
	srv.Close()
	for _, closer := range closers {
		if err := closer(); err != nil {
			fmt.Fprintf(os.Stderr, "pasgal-serve: unmap: %v\n", err)
		}
	}
	fmt.Println("pasgal-serve: bye")
}

func admDesc(maxConc int) string {
	if maxConc > 0 {
		return fmt.Sprintf("%d", maxConc)
	}
	return fmt.Sprintf("%d (worker-bound)", pasgal.Workers())
}
