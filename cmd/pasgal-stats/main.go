// pasgal-stats prints the paper's Table 1 statistics (n, m, m', sampled
// diameter lower bounds D, D') for a graph file or for the whole workload
// registry.
//
// Usage:
//
//	pasgal-stats -all -scale 0.5
//	pasgal-stats -graph road.adj -samples 5
package main

import (
	"flag"
	"fmt"
	"os"

	"pasgal"
	"pasgal/internal/bench"
)

func main() {
	all := flag.Bool("all", false, "print stats for all 22 registry workloads")
	path := flag.String("graph", "", "graph file to analyze")
	directed := flag.Bool("directed", true, "treat file input as directed")
	scale := flag.Float64("scale", 1.0, "workload size multiplier (with -all)")
	samples := flag.Int("samples", 3, "double-sweep BFS samples for the diameter bound")
	flag.Parse()

	switch {
	case *all:
		bench.Tab1(bench.Config{Scale: *scale, Reps: 1, Out: os.Stdout})
	case *path != "":
		g, err := pasgal.LoadGraph(*path, *directed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pasgal-stats: %v\n", err)
			os.Exit(1)
		}
		st := pasgal.ComputeStats(g, *samples, 12345)
		fmt.Println(g)
		fmt.Printf("n=%d m'=%d m=%d D'>=%d D>=%d maxdeg=%d avgdeg=%.2f\n",
			st.N, st.MDirected, st.MSymmetric, st.DiamLBDir, st.DiamLB,
			st.MaxDeg, st.AvgDeg)
	default:
		fmt.Fprintln(os.Stderr, "pasgal-stats: need -all or -graph")
		os.Exit(2)
	}
}
