// pasgal-loadgen drives mixed query traffic at a running pasgal-serve
// daemon and reports throughput plus p50/p90/p99 latency. It is both a
// handheld load tool and the bench vehicle behind `pasgal-bench -exp
// serve` (which measures coalesced vs uncoalesced single-source BFS
// throughput through this same engine).
//
// Usage:
//
//	pasgal-loadgen -url http://localhost:8080 -clients 64 -requests 4096
//	pasgal-loadgen -url http://localhost:8080 -mix bfs=1 -coalesce=false
//	pasgal-loadgen -url http://localhost:8080 -duration 10s -json out.json
//
// The traffic mix is a comma-separated weight list over the served
// endpoints (default "bfs=8,reachable=4,p2p=4,sssp=2,scc=1,kcore=1").
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"pasgal/internal/serve"
)

func main() {
	url := flag.String("url", "http://localhost:8080", "pasgal-serve base URL")
	graphName := flag.String("graph", "", "served graph to query (default: first from /graphs)")
	clients := flag.Int("clients", 8, "concurrent client loops")
	requests := flag.Int("requests", 0, "total request budget (0 = clients*32)")
	duration := flag.Duration("duration", 0, "stop after this long even if budget remains (0 = no limit)")
	mixSpec := flag.String("mix", "", "traffic mix, e.g. bfs=8,p2p=2 (default: standard mixed workload)")
	coalesce := flag.Bool("coalesce", true, "allow server-side query coalescing (false appends coalesce=off)")
	cache := flag.Bool("cache", true, "allow server-side result caching (false appends cache=off)")
	sources := flag.Int("sources", 0, "bound on the source-id space (0 = min(n, 4096))")
	timeout := flag.Duration("timeout", 0, "per-query ?timeout= (0 = none)")
	seed := flag.Uint64("seed", 1, "traffic RNG seed")
	jsonOut := flag.String("json", "", "also write the report to this JSON file")
	flag.Parse()

	mix, err := parseMix(*mixSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pasgal-loadgen: %v\n", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := serve.RunLoad(ctx, serve.LoadConfig{
		BaseURL:    *url,
		Graph:      *graphName,
		Clients:    *clients,
		Requests:   *requests,
		Duration:   *duration,
		Mix:        mix,
		Coalesce:   *coalesce,
		Cache:      *cache,
		NumSources: *sources,
		Timeout:    *timeout,
		Seed:       *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pasgal-loadgen: %v\n", err)
		os.Exit(1)
	}
	serve.WriteReport(os.Stdout, rep)

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pasgal-loadgen: write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *jsonOut)
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

// parseMix turns "bfs=8,p2p=2" into a weight map ("" = nil = default).
func parseMix(spec string) (map[string]int, error) {
	if spec == "" {
		return nil, nil
	}
	mix := make(map[string]int)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		algo, wt, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want algo=weight)", part)
		}
		w, err := strconv.Atoi(wt)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad mix weight %q", part)
		}
		mix[algo] = w
	}
	return mix, nil
}
