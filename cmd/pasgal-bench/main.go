// pasgal-bench regenerates the paper's evaluation artifacts: the graph
// statistics table (tab1), the BFS/SCC/BCC running-time tables with
// geometric means and Figure 2 speedup panels (bfs, scc, bcc), the SSSP
// comparison (sssp), Figure 1's SCC scalability sweep (fig1), and the
// design-choice ablations (abl-tau, abl-bag, abl-dir, abl-sssp).
//
// Usage:
//
//	pasgal-bench -exp all -scale 1.0 -reps 3
//	pasgal-bench -exp scc -graphs TW,OK,NA,REC
//	pasgal-bench -exp fig1 -workers 8
//	pasgal-bench -exp bfs -trace /tmp/trace          # tracing sinks
//	pasgal-bench -exp bfs -cpuprofile cpu.pprof      # pprof hooks
//	pasgal-bench -compare old.json new.json          # regression gate
//
// With -trace DIR, every algorithm run (PASGAL and baselines) plus the
// parallel runtime feeds one trace.Tracer, and three sinks are written into
// DIR: rounds.log (human-readable), events.jsonl (event stream), and
// chrome_trace.json (load in chrome://tracing or https://ui.perfetto.dev).
//
// With -compare OLD NEW, no experiments run; the two result files (written
// by -json) are diffed per (experiment, graph, implementation) and the
// process exits 1 if any cell slowed down by more than -threshold
// (default 0.25 = 25%).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"pasgal/internal/bench"
	"pasgal/internal/parallel"
	"pasgal/internal/trace"
)

func main() {
	exp := flag.String("exp", "all", "experiment: tab1|bfs|scc|bcc|sssp|build|queries|serve|compress|updates|fig1|fig2|conn|abl-tau|abl-bag|abl-dir|abl-sssp|all")
	scale := flag.Float64("scale", 1.0, "workload size multiplier")
	reps := flag.Int("reps", 3, "timing repetitions (median reported)")
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	graphs := flag.String("graphs", "", "comma-separated workload subset (default: all 22)")
	jsonOut := flag.String("json", "", "also write table results to this JSON file")
	svgDir := flag.String("svg", "", "also render Figure 2-style speedup charts into this directory")
	traceDir := flag.String("trace", "", "write trace sinks (rounds.log, events.jsonl, chrome_trace.json) into this directory")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	compare := flag.Bool("compare", false, "compare two result JSON files (args: old.json new.json); exit 1 on regression")
	threshold := flag.Float64("threshold", 0.25, "with -compare: slowdown fraction that counts as a regression")
	timeout := flag.Duration("timeout", 0, "abort the whole sweep after this long (0 = no limit)")
	flag.Parse()

	// Ctrl-C (or -timeout) cancels in-flight algorithm runs via Options.Ctx
	// and stops the sweep at the next experiment boundary, so partial JSON /
	// trace sinks still get written below.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: pasgal-bench -compare [-threshold 0.25] old.json new.json")
			os.Exit(2)
		}
		n, err := bench.CompareFiles(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pasgal-bench: compare: %v\n", err)
			os.Exit(2)
		}
		if n > 0 {
			os.Exit(1)
		}
		return
	}

	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pasgal-bench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "pasgal-bench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	var tracer *trace.Tracer
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "pasgal-bench: trace: %v\n", err)
			os.Exit(1)
		}
		tracer = trace.New()
		parallel.SetTracer(tracer)
		defer parallel.SetTracer(nil)
	}

	cfg := bench.Config{Scale: *scale, Reps: *reps, Out: os.Stdout, Tracer: tracer, Ctx: ctx}
	if *graphs != "" {
		cfg.Graphs = strings.Split(*graphs, ",")
	}
	fmt.Printf("pasgal-bench: scale=%.2f reps=%d workers=%d GOMAXPROCS=%d\n",
		*scale, *reps, parallel.Workers(), runtime.GOMAXPROCS(0))

	var records []bench.Record
	implsOf := map[string][]string{
		"bfs": bench.BFSImpls, "scc": bench.SCCImpls,
		"bcc": bench.BCCImpls, "sssp": bench.SSSPImpls,
		"build": bench.BuildImpls, "queries": bench.QueriesImpls,
		"serve": bench.ServeImpls, "compress": bench.CompressImpls,
		"updates": bench.UpdatesImpls,
	}
	collect := func(name string, results []bench.Result) {
		if *jsonOut != "" {
			records = append(records, bench.Record{
				Experiment: name, Scale: *scale, Reps: *reps,
				Workers: parallel.Workers(), Results: results,
			})
		}
		if *svgDir != "" {
			path := fmt.Sprintf("%s/fig2-%s.svg", *svgDir, name)
			title := fmt.Sprintf("Figure 2 (%s): speedup over sequential", strings.ToUpper(name))
			if err := bench.WriteSpeedupSVG(path, title, implsOf[name], results); err != nil {
				fmt.Fprintf(os.Stderr, "pasgal-bench: svg: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	run := func(name string) {
		switch name {
		case "tab1":
			bench.Tab1(cfg)
		case "bfs":
			collect(name, bench.TableBFS(cfg))
		case "scc":
			collect(name, bench.TableSCC(cfg))
		case "bcc":
			collect(name, bench.TableBCC(cfg))
		case "sssp":
			collect(name, bench.TableSSSP(cfg))
		case "build":
			collect(name, bench.TableBuild(cfg))
		case "queries":
			collect(name, bench.TableQueries(cfg))
		case "serve":
			collect(name, bench.TableServe(cfg))
		case "compress":
			collect(name, bench.TableCompress(cfg))
		case "updates":
			collect(name, bench.TableUpdates(cfg))
		case "fig1":
			bench.Fig1(cfg)
		case "fig1-model":
			bench.Fig1Model(cfg)
		case "fig2":
			// Figure 2 is the speedup view of the three tables.
			collect("scc", bench.TableSCC(cfg))
			collect("bcc", bench.TableBCC(cfg))
			collect("bfs", bench.TableBFS(cfg))
		case "abl-tau":
			bench.AblationTau(cfg)
		case "abl-tau-scc":
			bench.AblationTauSCC(cfg)
		case "abl-bag":
			bench.AblationBag(cfg)
		case "abl-dir":
			bench.AblationDirOpt(cfg)
		case "abl-sssp":
			bench.AblationSSSPPolicy(cfg)
		case "conn":
			bench.Connectivity(cfg)
		case "frontier":
			bench.FrontierGrowth(cfg)
		case "mem":
			bench.Memory(cfg)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
	}
	interrupted := false
	if *exp == "all" {
		for _, name := range []string{"tab1", "bfs", "scc", "bcc", "sssp",
			"build", "queries", "serve", "compress", "updates", "fig1", "fig1-model", "conn", "frontier", "mem",
			"abl-tau", "abl-tau-scc", "abl-bag", "abl-dir", "abl-sssp"} {
			if ctx.Err() != nil {
				interrupted = true
				break
			}
			run(name)
		}
	} else {
		for _, name := range strings.Split(*exp, ",") {
			if ctx.Err() != nil {
				interrupted = true
				break
			}
			run(name)
		}
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "pasgal-bench: sweep stopped early: %v\n", context.Cause(ctx))
	}
	if *jsonOut != "" {
		if err := bench.WriteJSON(*jsonOut, records); err != nil {
			fmt.Fprintf(os.Stderr, "pasgal-bench: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d experiment records to %s\n", len(records), *jsonOut)
	}
	if tracer != nil {
		if err := writeTraceSinks(*traceDir, tracer); err != nil {
			fmt.Fprintf(os.Stderr, "pasgal-bench: trace: %v\n", err)
			os.Exit(1)
		}
		printSchedSummary(tracer)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pasgal-bench: memprofile: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "pasgal-bench: memprofile: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
}

// printSchedSummary prints the work-stealing scheduler's counters for the
// whole run: how many loops launched (vs. ran inline), how many helper
// slots were published, how many were actually stolen, and how often the
// pool parked/woke. The steals/forks ratio is the quick read on whether
// the pool helped: ~0 means the callers did all the work (tiny launches),
// while a high ratio means the load balancing was active.
func printSchedSummary(tr *trace.Tracer) {
	loops := tr.CounterValue(trace.CtrLoops)
	inline := tr.CounterValue(trace.CtrInlineLoops)
	forks := tr.CounterValue(trace.CtrForks)
	steals := tr.CounterValue(trace.CtrSteals)
	parks := tr.CounterValue(trace.CtrParks)
	wakes := tr.CounterValue(trace.CtrWakes)
	fmt.Printf("scheduler: %d launches (%d inline), %d forks published, %d stolen",
		loops, inline, forks, steals)
	if forks > 0 {
		fmt.Printf(" (%.1f%%)", 100*float64(steals)/float64(forks))
	}
	fmt.Printf(", %d parks, %d wakes\n", parks, wakes)
}

// writeTraceSinks renders the recording in all three formats.
func writeTraceSinks(dir string, tr *trace.Tracer) error {
	sinks := []struct {
		name  string
		write func(*os.File) error
	}{
		{"rounds.log", func(f *os.File) error { return tr.WriteRoundLog(f) }},
		{"events.jsonl", func(f *os.File) error { return tr.WriteJSONL(f) }},
		{"chrome_trace.json", func(f *os.File) error { return tr.WriteChromeTrace(f) }},
	}
	for _, s := range sinks {
		path := filepath.Join(dir, s.name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := s.write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}
