// Package pasgal is a Go implementation of PASGAL — the Parallel And
// Scalable Graph Algorithm Library (Dong, Gu, Sun, Wang; SPAA 2024) — a
// shared-memory parallel graph library designed to stay fast on
// large-diameter graphs, where conventional level-synchronous systems pay a
// global synchronization per hop and can lose to sequential code.
//
// The library's core technique is vertical granularity control (VGC):
// frontier vertices are processed by bounded multi-hop local searches that
// amortize scheduling overhead and grow frontiers quickly, backed by
// hash-bag frontier data structures. On top of these it provides:
//
//   - BFS   — VGC label-correcting BFS with distance-bucketed frontiers and
//     direction optimization;
//   - SCC   — multi-pivot forward/backward reachability with subproblem
//     refinement and trimming;
//   - BCC   — the FAST-BCC algorithm (spanning forest + Euler tour +
//     skeleton connectivity; O(n+m) work, O(n) auxiliary space, no BFS);
//   - SSSP  — the stepping-algorithm framework (ρ-stepping, Δ-stepping,
//     Bellman–Ford) with VGC relaxation.
//
// Every algorithm returns machine-independent Metrics (rounds = global
// synchronizations, edges visited, frontier sizes) alongside its result.
// Graphs are CSR (see Graph); deterministic seeded generators for the
// paper's 22 evaluation workloads live behind the Generate* functions, and
// LoadGraph/SaveGraph speak the PBBS .adj, binary .bin, and edge-list
// formats.
package pasgal

import (
	"pasgal/internal/conn"
	"pasgal/internal/core"
	"pasgal/internal/graph"
	"pasgal/internal/msbfs"
	"pasgal/internal/parallel"
	"pasgal/internal/seq"
)

// SetWorkers overrides the worker-team size used by every parallel loop in
// the library (default: GOMAXPROCS). p < 1 resets to the default. Returns
// the previous value. Used by the scaling experiments; most callers should
// leave it alone.
func SetWorkers(p int) int { return parallel.SetWorkers(p) }

// Workers returns the current worker-team size.
func Workers() int { return parallel.Workers() }

// Graph is a compressed-sparse-row graph. See internal/graph for methods:
// Degree, Neighbors, Transpose, Symmetrized, Validate, ...
type Graph = graph.Graph

// Adjacency is the read seam the traversal kernels accept: either a plain
// *Graph or a *CompressedGraph. The two representations keep separate,
// specialized scan loops inside each kernel — the interface carries only
// per-call metadata, never per-edge dispatch.
type Adjacency = graph.Adjacency

// CompressedGraph is the difference-encoded byte-varint CSR representation:
// 3-5x smaller than plain CSR on social/web graphs, traversable in place by
// every Adjacency-accepting algorithm, and mappable straight from a .pz
// file (see MapCompressed). See docs/STORAGE.md.
type CompressedGraph = graph.Compressed

// Edge is an edge (or arc) with an optional weight.
type Edge = graph.Edge

// BuildOptions controls NewGraph.
type BuildOptions = graph.BuildOptions

// Stats is the Table 1-style summary produced by ComputeStats.
type Stats = graph.Stats

// Options tunes the PASGAL algorithms; the zero value selects defaults
// (τ = 512, hash-bag frontiers, direction optimization on).
type Options = core.Options

// Metrics reports the cost profile of a run: rounds (global
// synchronizations), edges visited, frontier sizes.
type Metrics = core.Metrics

// BCCResult is a biconnectivity decomposition.
type BCCResult = core.BCCResult

// StepPolicy selects SSSP thresholds; see RhoStepping, DeltaStepping,
// BellmanFordPolicy.
type StepPolicy = core.StepPolicy

// RhoStepping processes the ~ρ closest active vertices per phase (PASGAL's
// default SSSP policy).
type RhoStepping = core.RhoStepping

// DeltaStepping processes fixed-width distance bands.
type DeltaStepping = core.DeltaStepping

// BellmanFordPolicy processes every active vertex every phase.
type BellmanFordPolicy = core.BellmanFordPolicy

// ErrCanceled is returned by every algorithm when Options.Ctx is canceled
// before the run converges. The Metrics returned alongside it describe the
// partial run; the result values are zero.
var ErrCanceled = core.ErrCanceled

// ErrDeadline is returned by every algorithm when Options.Ctx's deadline
// passes before the run converges.
var ErrDeadline = core.ErrDeadline

const (
	// None is the "no vertex" sentinel.
	None = graph.None
	// InfDist marks unreachable vertices in BFS output.
	InfDist = graph.InfDist
	// InfWeight marks unreachable vertices in SSSP output.
	InfWeight = core.InfWeight
)

// NewGraph builds a CSR graph from an edge list in parallel. Self loops are
// dropped and duplicate edges merged (see BuildOptions to override).
func NewGraph(n int, edges []Edge, directed bool, opt BuildOptions) *Graph {
	return graph.FromEdges(n, edges, directed, opt)
}

// CompressGraph difference-encodes g into the compact byte-varint
// representation, in parallel. The result serves every Adjacency-accepting
// algorithm directly; use its Decompress method to get the plain CSR back.
func CompressGraph(g *Graph) *CompressedGraph {
	return graph.Compress(g)
}

// RelabelByDegree renumbers g's vertices in nonincreasing degree order
// (ties by original id) and returns the relabeled graph plus the
// permutation (perm[old] = new). Degree ordering clusters the high-degree
// hubs at small ids, which shrinks the compressed encoding of power-law
// graphs — apply it before CompressGraph when the vertex numbering is not
// itself meaningful.
func RelabelByDegree(g *Graph) (*Graph, []uint32) {
	return graph.RelabelByDegree(g)
}

// BFS returns hop distances from src (InfDist when unreachable) using
// PASGAL's vertical-granularity-control BFS. With Options.Ctx set, a
// canceled or expired context stops the run early with ErrCanceled or
// ErrDeadline and partial Metrics (never a partial result).
func BFS(g Adjacency, src uint32, opt Options) ([]uint32, *Metrics, error) {
	return core.BFS(g, src, opt)
}

// BFSTree returns hop distances and a BFS-tree parent per reached vertex
// (None for the source and unreached vertices). Distance/parent pairs are
// updated with a single packed CAS, so the tree is always consistent.
func BFSTree(g *Graph, src uint32, opt Options) (dist, parent []uint32, met *Metrics, err error) {
	return core.BFSTree(g, src, opt)
}

// SCC returns, for a directed graph, a strongly-connected-component label
// per vertex (the id of a representative member) and the component count.
func SCC(g *Graph, opt Options) ([]uint32, int, *Metrics, error) {
	return core.SCC(g, opt)
}

// BCC returns the biconnected components of an undirected graph using
// FAST-BCC: a label per arc, the component count, and articulation points.
// Symmetrize directed graphs first (g.Symmetrized()).
func BCC(g *Graph, opt Options) (BCCResult, *Metrics, error) {
	return core.BCC(g, opt)
}

// SSSP returns shortest-path distances from src on a weighted graph using
// the stepping framework. policy == nil selects ρ-stepping defaults.
func SSSP(g Adjacency, src uint32, policy StepPolicy, opt Options) ([]uint64, *Metrics, error) {
	return core.SSSP(g, src, policy, opt)
}

// SSSPTree returns shortest-path distances and a shortest-path tree
// (parent per reached vertex; None for src and unreachable vertices).
// Use PathTo to reconstruct routes.
func SSSPTree(g *Graph, src uint32, policy StepPolicy, opt Options) (dist []uint64, parent []uint32, met *Metrics, err error) {
	return core.SSSPTree(g, src, policy, opt)
}

// PathTo reconstructs the root-to-v path from a parent array produced by
// SSSPTree or BFSTree (nil if v is unreachable).
func PathTo(parent []uint32, root, v uint32) []uint32 {
	return core.PathTo(parent, root, v)
}

// KCore returns the coreness of every vertex of an undirected graph and
// the degeneracy, by parallel peeling with VGC (one of the paper's named
// extensions).
func KCore(g *Graph, opt Options) ([]uint32, int, *Metrics, error) {
	return core.KCore(g, opt)
}

// PointToPoint returns the shortest-path distance from src to dst on a
// weighted graph (InfWeight if unreachable), using the stepping framework
// with goal-directed pruning (one of the paper's named extensions).
// policy == nil selects ρ-stepping defaults.
func PointToPoint(g Adjacency, src, dst uint32, policy StepPolicy, opt Options) (uint64, *Metrics, error) {
	return core.PointToPoint(g, src, dst, policy, opt)
}

// BatchedBFS runs one BFS per source simultaneously through the batched
// multi-source (MS-BFS) lane engine and returns one hop-distance row per
// source (InfDist marks unreachable vertices) — the same rows a loop over
// BFS would produce, but sharing each edge scan across up to 64 sources.
// This is the high-throughput query path; see docs/BATCHED.md. Duplicate
// sources are allowed; an out-of-range source id is an error.
func BatchedBFS(g Adjacency, sources []uint32, opt Options) ([][]uint32, *Metrics, error) {
	return msbfs.Run(g, sources, opt)
}

// BatchedReachable runs one reachability search per source through the
// MS-BFS lane engine: row i marks every vertex reachable from sources[i].
// Unlike Reachable (which unions its sources into one search), each source
// gets its own row.
func BatchedReachable(g Adjacency, sources []uint32, opt Options) ([][]bool, *Metrics, error) {
	return msbfs.RunReachable(g, sources, opt)
}

// BatchedPointToPoint answers a batch of (src, dst) hop-distance queries
// through the MS-BFS lane engine: result i is the edge count of a shortest
// path for pairs[i] (InfDist when unreachable). A lane stops spreading
// once its destination settles, and each 64-lane group stops as soon as
// every lane is done.
func BatchedPointToPoint(g Adjacency, pairs [][2]uint32, opt Options) ([]uint32, *Metrics, error) {
	return msbfs.RunPointToPoint(g, pairs, opt)
}

// Coalescer batches concurrent single-source BFS requests against one
// graph into shared MS-BFS lane groups; see msbfs.Coalescer.
type Coalescer = msbfs.Coalescer

// CoalescerOptions tunes a Coalescer (flush batch size and latency bound).
type CoalescerOptions = msbfs.CoalescerOptions

// NewCoalescer returns a batching front door for BFS queries against g.
// Submit queues one source and blocks until its distance row is ready;
// requests arriving within the flush window share edge scans.
func NewCoalescer(g Adjacency, opts CoalescerOptions) *Coalescer {
	return msbfs.NewCoalescer(g, opts)
}

// SequentialKCore is the Matula–Beck bucket algorithm, the sequential
// k-core baseline.
func SequentialKCore(g *Graph) ([]uint32, int) { return seq.KCore(g) }

// Reachable marks every vertex reachable from any source, using the
// paper's order-relaxed VGC reachability search.
func Reachable(g Adjacency, srcs []uint32, opt Options) ([]bool, *Metrics, error) {
	return core.Reachable(g, srcs, opt)
}

// ConnectedComponents labels the connected components of an undirected
// graph (labels are component-minimum vertex ids) using BFS-free parallel
// union–find, and returns the component count. Symmetrize directed graphs
// first.
func ConnectedComponents(g Adjacency) ([]uint32, int) {
	return conn.Components(g)
}

// SpanningForest returns a spanning forest of an undirected graph (one
// edge list; n - #components edges), the component labeling, and the
// component count.
func SpanningForest(g Adjacency) ([]Edge, []uint32, int) {
	return conn.SpanningForest(g)
}

// InducedSubgraph returns the subgraph of g induced by verts plus the
// original-id mapping.
func InducedSubgraph(g *Graph, verts []uint32) (*Graph, []uint32) {
	return graph.InducedSubgraph(g, verts)
}

// LargestComponent returns the subgraph induced by g's largest (weakly)
// connected component plus the original-id mapping.
func LargestComponent(g *Graph) (*Graph, []uint32) {
	return graph.LargestComponent(g)
}

// DegreeHistogram returns counts[d] = number of vertices with out-degree d.
func DegreeHistogram(g *Graph) []int64 { return graph.DegreeHistogram(g) }

// Bridges flags the bridge edges of an undirected graph (per arc; both
// arcs of a bridge are flagged) and returns the bridge count — a direct
// corollary of FAST-BCC (a bridge is a single-edge biconnected component).
func Bridges(g *Graph, opt Options) ([]bool, int, *Metrics, error) {
	return core.Bridges(g, opt)
}

// DensestSubgraph returns Charikar's peeling 2-approximation of the
// maximum-density subgraph, computed from the VGC k-core decomposition:
// the vertex set, its density (edges/vertices), and metrics.
func DensestSubgraph(g *Graph, opt Options) ([]uint32, float64, *Metrics, error) {
	return core.DensestSubgraph(g, opt)
}

// SequentialBFS is the queue-based sequential baseline (the "*" column of
// the paper's BFS table).
func SequentialBFS(g *Graph, src uint32) []uint32 { return seq.BFS(g, src) }

// SequentialSCC is Tarjan's algorithm, the sequential SCC baseline.
func SequentialSCC(g *Graph) ([]uint32, int) { return seq.TarjanSCC(g) }

// SequentialBCC is the Hopcroft–Tarjan algorithm, the sequential BCC
// baseline. Its result type is convertible to BCCResult field-by-field.
func SequentialBCC(g *Graph) BCCResult {
	r := seq.HopcroftTarjanBCC(g)
	return BCCResult{NumBCC: r.NumBCC, ArcLabel: r.ArcLabel, IsArt: r.IsArtPort}
}

// SequentialSSSP is Dijkstra's algorithm, the sequential SSSP baseline.
func SequentialSSSP(g *Graph, src uint32) []uint64 { return seq.Dijkstra(g, src) }

// ComputeStats gathers the paper's Table 1 row for g: n, m, m', and sampled
// diameter lower bounds. diamSamples <= 0 skips diameter estimation.
func ComputeStats(g *Graph, diamSamples int, seed uint64) Stats {
	return graph.ComputeStats(g, diamSamples, seed)
}

// EstimateDiameter returns a sampled double-sweep BFS diameter lower bound.
func EstimateDiameter(g *Graph, samples int, seed uint64) int {
	return graph.EstimateDiameter(g, samples, seed)
}
