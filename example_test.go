package pasgal_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	"pasgal"
	"pasgal/internal/serve"
)

// A small deterministic graph used by the examples: two directed cycles
// bridged by one edge, plus a two-vertex tail.
func exampleGraph() *pasgal.Graph {
	return pasgal.NewGraph(8, []pasgal.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 2, V: 3},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3},
		{U: 5, V: 6}, {U: 6, V: 7},
	}, true, pasgal.BuildOptions{})
}

func ExampleBFS() {
	dist, _, _ := pasgal.BFS(exampleGraph(), 0, pasgal.Options{})
	fmt.Println(dist)
	// Output: [0 1 2 3 4 5 6 7]
}

func ExampleSCC() {
	_, count, _, _ := pasgal.SCC(exampleGraph(), pasgal.Options{})
	fmt.Println(count, "strongly connected components")
	// Output: 4 strongly connected components
}

func ExampleBCC() {
	sym := exampleGraph().Symmetrized()
	res, _, _ := pasgal.BCC(sym, pasgal.Options{})
	arts := []int{}
	for v, isArt := range res.IsArt {
		if isArt {
			arts = append(arts, v)
		}
	}
	fmt.Println(res.NumBCC, "BCCs, articulation points:", arts)
	// Output: 5 BCCs, articulation points: [2 3 5 6]
}

func ExampleSSSP() {
	weighted := pasgal.AddUniformWeights(exampleGraph(), 3, 3, 1) // all weights 3
	dist, _, _ := pasgal.SSSP(weighted, 0, pasgal.RhoStepping{}, pasgal.Options{})
	fmt.Println(dist)
	// Output: [0 3 6 9 12 15 18 21]
}

func ExamplePointToPoint() {
	weighted := pasgal.AddUniformWeights(exampleGraph(), 2, 2, 1)
	d, _, _ := pasgal.PointToPoint(weighted, 0, 7, nil, pasgal.Options{})
	fmt.Println(d)
	// Output: 14
}

func ExampleKCore() {
	// A triangle with a pendant path: the triangle is the 2-core.
	g := pasgal.NewGraph(5, []pasgal.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}, {U: 3, V: 4},
	}, false, pasgal.BuildOptions{})
	core, degeneracy, _, _ := pasgal.KCore(g, pasgal.Options{})
	fmt.Println(core, degeneracy)
	// Output: [2 2 2 1 1] 2
}

func ExampleConnectedComponents() {
	g := pasgal.NewGraph(5, []pasgal.Edge{
		{U: 0, V: 1}, {U: 3, V: 4},
	}, false, pasgal.BuildOptions{})
	labels, count := pasgal.ConnectedComponents(g)
	fmt.Println(labels, count)
	// Output: [0 0 2 3 3] 3
}

func ExampleBridges() {
	// Two triangles joined by one edge: exactly one bridge.
	g := pasgal.NewGraph(6, []pasgal.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3},
		{U: 2, V: 3},
	}, false, pasgal.BuildOptions{})
	_, count, _, _ := pasgal.Bridges(g, pasgal.Options{})
	fmt.Println(count, "bridge")
	// Output: 1 bridge
}

func ExampleReachable() {
	reach, _, _ := pasgal.Reachable(exampleGraph(), []uint32{3}, pasgal.Options{})
	fmt.Println(reach)
	// Output: [false false false true true true true true]
}

func ExampleBatchedBFS() {
	// One engine call answers three BFS queries, sharing each edge scan
	// across the batch; row i is exactly BFS(g, sources[i]).
	rows, _, _ := pasgal.BatchedBFS(exampleGraph(), []uint32{0, 3, 6}, pasgal.Options{})
	for _, row := range rows {
		fmt.Println(row)
	}
	// Output:
	// [0 1 2 3 4 5 6 7]
	// [4294967295 4294967295 4294967295 0 1 2 3 4]
	// [4294967295 4294967295 4294967295 4294967295 4294967295 4294967295 0 1]
}

func ExampleGenerateGrid() {
	g := pasgal.GenerateGrid(3, 4, false, 1)
	fmt.Println(g.N, "vertices,", g.UndirectedM(), "edges")
	// Output: 12 vertices, 17 edges
}

func ExampleBFSTree() {
	_, parent, _, _ := pasgal.BFSTree(pasgal.GenerateChain(5, true), 0, pasgal.Options{})
	fmt.Println(parent[1:]) // parent[0] is None (the source)
	// Output: [0 1 2 3]
}

func ExampleOptions() {
	// Tau controls the VGC local-search budget; Tau=1 disables VGC and the
	// metrics show the synchronization cost difference.
	chain := pasgal.GenerateChain(10000, false)
	_, withVGC, _ := pasgal.BFS(chain, 0, pasgal.Options{Tau: 512, DisableDirectionOpt: true})
	_, without, _ := pasgal.BFS(chain, 0, pasgal.Options{Tau: 1, DisableDirectionOpt: true})
	fmt.Println(withVGC.Rounds < without.Rounds/10)
	// Output: true
}

// ExampleServe boots the query daemon's handler over the example graph
// and asks it for a BFS summary — the same HTTP surface pasgal-serve
// exposes as a long-running process.
func ExampleServe() {
	srv, err := serve.New(map[string]*pasgal.Graph{"demo": exampleGraph()},
		serve.Config{})
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/query/bfs?graph=demo&src=0&summary=1")
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var out struct {
		Reached int    `json:"reached"`
		Ecc     uint32 `json:"ecc"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		panic(err)
	}
	fmt.Printf("reached %d vertices, eccentricity %d\n", out.Reached, out.Ecc)
	// Output: reached 8 vertices, eccentricity 7
}
