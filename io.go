package pasgal

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"

	"pasgal/internal/gio"
	"pasgal/internal/graph"
)

// LoadGraph reads a graph file, dispatching on the extension: ".adj" (PBBS
// text adjacency), ".bin" (binary CSR), ".mtx" (MatrixMarket coordinate),
// ".gr" (DIMACS shortest-path); anything else is parsed as a whitespace
// edge list. A trailing ".gz" on any of these transparently gunzips. The
// directed flag applies to formats that do not encode direction themselves
// (.adj and edge lists).
func LoadGraph(path string, directed bool) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	ext := path
	if strings.HasSuffix(ext, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("pasgal: gunzip %s: %w", path, err)
		}
		defer zr.Close()
		r = zr
		ext = strings.TrimSuffix(ext, ".gz")
	}
	switch {
	case strings.HasSuffix(ext, ".adj"):
		return gio.ReadAdj(r, directed)
	case strings.HasSuffix(ext, ".bin"):
		return gio.ReadBin(r)
	case strings.HasSuffix(ext, ".pz"):
		c, err := gio.ReadPZ(r)
		if err != nil {
			return nil, err
		}
		return c.Decompress(), nil
	case strings.HasSuffix(ext, ".mtx"):
		return gio.ReadMTX(r)
	case strings.HasSuffix(ext, ".gr"):
		return gio.ReadDIMACS(r)
	default:
		return gio.ReadEdgeList(r, -1, directed)
	}
}

// SaveGraph writes a graph file, dispatching on the extension like
// LoadGraph (edge-list text for unknown extensions); a trailing ".gz"
// gzips the output. The write is atomic: bytes land in a temp file that
// is fsynced and renamed over path, so an interrupted save never leaves
// a truncated graph file in place of a good one.
func SaveGraph(path string, g *Graph) error {
	return gio.WriteFileAtomic(path, func(fw io.Writer) error {
		w := fw
		var zw *gzip.Writer
		ext := path
		if strings.HasSuffix(ext, ".gz") {
			zw = gzip.NewWriter(fw)
			w = zw
			ext = strings.TrimSuffix(ext, ".gz")
		}
		var err error
		switch {
		case strings.HasSuffix(ext, ".adj"):
			err = gio.WriteAdj(w, g)
		case strings.HasSuffix(ext, ".bin"):
			err = gio.WriteBin(w, g)
		case strings.HasSuffix(ext, ".pz"):
			err = gio.WritePZ(w, graph.Compress(g))
		case strings.HasSuffix(ext, ".mtx"):
			err = gio.WriteMTX(w, g)
		case strings.HasSuffix(ext, ".gr"):
			err = gio.WriteDIMACS(w, g)
		default:
			err = gio.WriteEdgeList(w, g)
		}
		if err == nil && zw != nil {
			err = zw.Close()
		}
		return err
	})
}

// SaveCompressed writes c to path in the .pz compressed CSR format
// (header + restart offsets + difference-encoded arc bytes; see
// docs/STORAGE.md).
func SaveCompressed(path string, c *CompressedGraph) error {
	return gio.WritePZFile(path, c)
}

// LoadCompressed reads a .pz file fully into memory, verifying its
// checksum and validating every adjacency list. Use MapCompressed to skip
// the read pass on trusted files.
func LoadCompressed(path string) (*CompressedGraph, error) {
	return gio.ReadPZFile(path)
}

// MapCompressed memory-maps a .pz file read-only and returns the graph
// view plus a close function that unmaps it. Load time is O(page-in):
// only the header and offset table are touched eagerly, so a daemon can
// start serving a billion-edge graph in milliseconds and fault arc data
// in on demand. Only structural checks run (no checksum) — use
// LoadCompressed for untrusted input. The graph must not be used after
// close.
func MapCompressed(path string) (*CompressedGraph, func() error, error) {
	return gio.MapPZFile(path)
}

// MustLoadGraph is LoadGraph, panicking on error (examples and tools).
func MustLoadGraph(path string, directed bool) *Graph {
	g, err := LoadGraph(path, directed)
	if err != nil {
		panic(fmt.Sprintf("pasgal: loading %s: %v", path, err))
	}
	return g
}
