package pasgal

import (
	"pasgal/internal/gen"
)

// The Generate* functions are deterministic seeded generators covering the
// structural classes of the paper's 22 evaluation graphs: social networks
// and web crawls (low diameter, skewed degrees), road and k-NN graphs
// (sparse, large diameter), and the synthetic grids and meshes.

// GenerateRMAT samples a power-law RMAT graph with 2^scale vertices — the
// social-network class (LJ, OK, TW, FS, FB analogues).
func GenerateRMAT(scale, edgeFactor int, directed bool, seed uint64) *Graph {
	return gen.SocialRMAT(scale, edgeFactor, directed, seed)
}

// GenerateWebLike samples a bow-tie web-crawl analogue: an RMAT core with
// long directed tendril paths (WK, SD, CW, HL14, HL12 analogues).
func GenerateWebLike(n, edgeFactor int, tendrilFrac float64, tendrilLen int, seed uint64) *Graph {
	return gen.WebLike(n, edgeFactor, tendrilFrac, tendrilLen, seed)
}

// GenerateRGG samples a random geometric graph; with avgDeg around 6 it is
// the road-network analogue (AF, NA, AS, EU).
func GenerateRGG(n int, avgDeg float64, seed uint64) *Graph {
	return gen.RGG(n, avgDeg, seed)
}

// GenerateKNN builds the k-nearest-neighbor graph of clustered random
// points (CH5, GL5, GL10, COS5 analogues).
func GenerateKNN(n, k, clusters int, directed bool, seed uint64) *Graph {
	return gen.KNN(n, k, clusters, directed, seed)
}

// GenerateGrid builds the rows x cols grid — the paper's REC input.
func GenerateGrid(rows, cols int, directed bool, seed uint64) *Graph {
	return gen.Grid2D(rows, cols, directed, seed)
}

// GenerateSampledGrid builds a grid with each edge kept with probability
// keepProb — the paper's SREC input.
func GenerateSampledGrid(rows, cols int, keepProb float64, directed bool, seed uint64) *Graph {
	return gen.SampledGrid(rows, cols, keepProb, directed, seed)
}

// GenerateTriGrid builds a triangulated mesh (TRCE analogue).
func GenerateTriGrid(rows, cols int) *Graph { return gen.TriGrid(rows, cols) }

// GeneratePerforatedGrid builds a grid with irregular holes (BBL analogue).
func GeneratePerforatedGrid(rows, cols, holePeriod, holeSize int, seed uint64) *Graph {
	return gen.PerforatedGrid(rows, cols, holePeriod, holeSize, seed)
}

// GenerateChain builds the n-vertex path — the adversarial worst case for
// frontier-based parallelism discussed in the paper's §3.
func GenerateChain(n int, directed bool) *Graph { return gen.Chain(n, directed) }

// GenerateER samples an Erdős–Rényi-style G(n, m) graph.
func GenerateER(n, m int, directed bool, seed uint64) *Graph {
	return gen.ER(n, m, directed, seed)
}

// AddUniformWeights returns a weighted copy of g with deterministic uniform
// integer weights in [lo, hi]; both arcs of an undirected edge agree.
func AddUniformWeights(g *Graph, lo, hi uint32, seed uint64) *Graph {
	return gen.AddUniformWeights(g, lo, hi, seed)
}
